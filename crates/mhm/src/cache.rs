//! A write-allocate L1 data-cache model.
//!
//! Section 3.1 argues the MHM's read of `Data_old` costs nothing extra:
//! in a write-allocate cache (ubiquitous in general-purpose processors),
//! servicing the store already brings the line into the cache, so the old
//! value is available locally by the time the write is pushed from the
//! write buffer into the L1. This model lets us check the claim: the
//! MHM's old-value reads hit 100% of the time and the miss count with the
//! MHM enabled equals the miss count without it.

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads + stores) that hit.
    pub hits: u64,
    /// Demand accesses that missed (and allocated).
    pub misses: u64,
    /// Old-value reads issued by the MHM datapath.
    pub mhm_reads: u64,
    /// Old-value reads that missed — the paper's claim is this stays 0.
    pub mhm_read_misses: u64,
}

impl CacheStats {
    /// Accumulates another counter set into this one (for aggregating
    /// per-thread caches or whole campaigns).
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.mhm_reads += other.mhm_reads;
        self.mhm_read_misses += other.mhm_read_misses;
    }

    /// Demand (load/store) hit rate in percent; 100 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            100.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }

    /// MHM old-value read hit rate in percent; 100 when idle.
    pub fn mhm_hit_rate(&self) -> f64 {
        if self.mhm_reads == 0 {
            100.0
        } else {
            100.0 * (self.mhm_reads - self.mhm_read_misses) as f64 / self.mhm_reads as f64
        }
    }

    /// Exports the counters into `registry` under `prefix` (e.g.
    /// `prefix = "l1"` yields `l1.hits`, `l1.misses`, `l1.mhm_reads`,
    /// `l1.mhm_read_misses`).
    pub fn export(&self, registry: &obs::Registry, prefix: &str) {
        registry.add(&format!("{prefix}.hits"), self.hits);
        registry.add(&format!("{prefix}.misses"), self.misses);
        registry.add(&format!("{prefix}.mhm_reads"), self.mhm_reads);
        registry.add(&format!("{prefix}.mhm_read_misses"), self.mhm_read_misses);
    }
}

/// A set-associative, write-allocate, LRU L1 data cache (tags only).
///
/// # Example
///
/// ```
/// use mhm::L1Cache;
///
/// let mut l1 = L1Cache::new(64, 4, 64); // 64 sets × 4 ways × 64-byte lines
/// l1.store(0x1234);          // write-allocate fills the line
/// l1.mhm_read_old(0x1234);   // MHM reads the old value: guaranteed hit
/// assert_eq!(l1.stats().mhm_read_misses, 0);
/// ```
#[derive(Debug, Clone)]
pub struct L1Cache {
    /// `sets[s]` holds the line tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line_bytes: u64,
    stats: CacheStats,
}

impl L1Cache {
    /// Creates a cache with `sets` sets, `assoc` ways, and `line_bytes`
    /// bytes per line.
    ///
    /// # Panics
    ///
    /// Panics unless `sets`, `assoc` are nonzero and `line_bytes` is a
    /// nonzero power of two.
    pub fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        assert!(sets > 0 && assoc > 0, "cache geometry must be nonzero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        L1Cache {
            sets: vec![Vec::new(); sets],
            assoc,
            line_bytes,
            stats: CacheStats::default(),
        }
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.line_bytes;
        let set = (line % self.sets.len() as u64) as usize;
        (set, line)
    }

    /// Looks up `addr`; on miss, allocates (evicting LRU). Returns `true`
    /// on hit. Shared by loads and stores (write-allocate).
    fn access(&mut self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            true
        } else {
            ways.insert(0, tag);
            ways.truncate(self.assoc);
            false
        }
    }

    /// A demand load.
    pub fn load(&mut self, addr: u64) -> bool {
        let hit = self.access(addr);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// A demand store (write-allocate: a miss fills the line first).
    pub fn store(&mut self, addr: u64) -> bool {
        let hit = self.access(addr);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// The MHM's read of the old value when the write buffer pushes the
    /// store at `addr` into the L1. Must be called after [`store`] for
    /// the same address (that is the datapath ordering); returns `true`
    /// on hit.
    ///
    /// [`store`]: L1Cache::store
    pub fn mhm_read_old(&mut self, addr: u64) -> bool {
        self.stats.mhm_reads += 1;
        let (set, tag) = self.locate(addr);
        let hit = self.sets[set].contains(&tag);
        if !hit {
            self.stats.mhm_read_misses += 1;
        }
        hit
    }

    /// A software traversal sweep over `addrs` (as `SW-InstantCheck_Tr`
    /// would perform at a checkpoint); returns how many accesses missed.
    /// This is the cache-pollution cost the incremental schemes avoid.
    pub fn sweep<I: IntoIterator<Item = u64>>(&mut self, addrs: I) -> u64 {
        let mut misses = 0;
        for a in addrs {
            if !self.load(a) {
                misses += 1;
            }
        }
        misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detrand::DetRng;

    #[test]
    fn store_allocates_and_mhm_read_hits() {
        let mut l1 = L1Cache::new(16, 2, 64);
        assert!(!l1.store(0x1000)); // cold miss, allocates
        assert!(l1.mhm_read_old(0x1000));
        assert!(l1.store(0x1008)); // same line: hit
        assert!(l1.mhm_read_old(0x1008));
        let s = l1.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.mhm_reads, 2);
        assert_eq!(s.mhm_read_misses, 0);
    }

    #[test]
    fn mhm_never_adds_misses_on_random_store_streams() {
        // The paper's claim, checked over a random address stream much
        // larger than the cache.
        let mut rng = DetRng::new(42);
        let mut with_mhm = L1Cache::new(64, 4, 64);
        let mut without = L1Cache::new(64, 4, 64);
        for _ in 0..100_000 {
            let addr = rng.below(1 << 22);
            without.store(addr);
            with_mhm.store(addr);
            with_mhm.mhm_read_old(addr);
        }
        assert_eq!(with_mhm.stats().mhm_read_misses, 0);
        assert_eq!(with_mhm.stats().misses, without.stats().misses);
        assert_eq!(with_mhm.stats().hits, without.stats().hits);
    }

    #[test]
    fn lru_eviction_works() {
        let mut l1 = L1Cache::new(1, 2, 64); // one set, two ways
        l1.store(0); // line 0
        l1.store(64); // line 1
        l1.load(0); // touch line 0 (MRU)
        l1.store(128); // evicts LRU = line 1
        assert!(l1.load(0));
        assert!(!l1.load(64), "line 1 was evicted");
    }

    #[test]
    fn traversal_sweep_pollutes_the_cache() {
        let mut l1 = L1Cache::new(64, 4, 64);
        // Warm a working set.
        for i in 0..64u64 {
            l1.store(i * 64);
        }
        // Sweep a state much larger than the cache.
        let misses = l1.sweep((0..100_000u64).map(|i| (1 << 22) | (i * 64)));
        assert!(misses > 90_000, "sweep should be mostly cold misses");
        // The working set is gone afterwards.
        let mut refetch_misses = 0;
        for i in 0..64u64 {
            if !l1.load(i * 64) {
                refetch_misses += 1;
            }
        }
        assert!(refetch_misses > 48);
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            mhm_reads: 10,
            mhm_read_misses: 1,
        };
        let b = CacheStats {
            hits: 1,
            misses: 3,
            mhm_reads: 10,
            mhm_read_misses: 0,
        };
        a.merge(b);
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 4);
        assert!((a.hit_rate() - 50.0).abs() < 1e-9);
        assert!((a.mhm_hit_rate() - 95.0).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 100.0);
        assert_eq!(CacheStats::default().mhm_hit_rate(), 100.0);
    }

    #[test]
    fn stats_export_into_registry() {
        let reg = obs::Registry::new();
        let s = CacheStats {
            hits: 7,
            misses: 2,
            mhm_reads: 5,
            mhm_read_misses: 0,
        };
        s.export(&reg, "l1");
        s.export(&reg, "l1"); // accumulates
        let snap = reg.snapshot();
        assert_eq!(snap.counters["l1.hits"], 14);
        assert_eq!(snap.counters["l1.misses"], 4);
        assert_eq!(snap.counters["l1.mhm_reads"], 10);
        assert_eq!(snap.counters["l1.mhm_read_misses"], 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = L1Cache::new(16, 2, 48);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_geometry_rejected() {
        let _ = L1Cache::new(0, 2, 64);
    }
}
