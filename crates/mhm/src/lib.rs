//! `mhm` — a functional model of InstantCheck's *Memory-State Hashing
//! Module* (Section 3 of the paper).
//!
//! The MHM is a small unit in each core's L1 cache controller: a hash
//! unit, a modulo add/subtract unit, an FP round-off unit, and a 64-bit
//! *Thread Hash* (TH) register. Whenever the write buffer pushes a store
//! into the L1, the MHM reads the old value from the cache line (already
//! present — write-allocate caches fill the line to service the write
//! anyway) and updates `TH = TH ⊖ hash(V_addr, Data_old) ⊕
//! hash(V_addr, Data_new)`, entirely core-locally.
//!
//! This crate models:
//!
//! * [`MhmCore`] — the per-core unit and its store-observation datapath,
//!   including the FP round-off unit;
//! * [`isa`] — the eight instructions of the software interface
//!   (Figure 4) executed against a memory bus;
//! * [`ClusteredMhm`] — the highly-parallel design of Figure 3(b), whose
//!   equivalence with the basic design follows from the commutativity of
//!   the hash combination (and is property-tested here);
//! * [`L1Cache`] — a write-allocate cache model used to validate the
//!   paper's claim that obtaining `Data_old` incurs no additional cache
//!   misses.
//!
//! # Example
//!
//! ```
//! use mhm::MhmCore;
//!
//! let mut core0 = MhmCore::new();
//! let mut core1 = MhmCore::new();
//! // Figure 2(a): thread 0 writes G: 2 → 9; thread 1 writes G: 9 → 12.
//! core0.on_store(0x1000, 2, 9, false);
//! core1.on_store(0x1000, 9, 12, false);
//! let sh_a = core0.th() + core1.th();
//!
//! // Figure 2(b): thread 1 writes G: 2 → 5; thread 0 writes G: 5 → 12.
//! let mut core0 = MhmCore::new();
//! let mut core1 = MhmCore::new();
//! core1.on_store(0x1000, 2, 5, false);
//! core0.on_store(0x1000, 5, 12, false);
//! let sh_b = core0.th() + core1.th();
//!
//! assert_eq!(sh_a, sh_b); // same final state, same State Hash
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cluster;
pub mod isa;
mod mhm_core;

pub use cache::{CacheStats, L1Cache};
pub use cluster::{ClusterOp, ClusteredMhm};
pub use mhm_core::MhmCore;
