//! The MHM software interface (Figure 4): eight instructions executed by
//! a core against its MHM unit and memory.
//!
//! This module gives the ISA an executable semantics: an [`Instruction`]
//! stream mutates an [`MhmCore`] plus a memory bus. The
//! determinism checker in the `instantcheck` crate uses the same unit
//! through its direct methods; this module exists so the ISA itself is a
//! tested, documented artifact (and is what a kernel/VMM would emit for
//! context switches).

use adhash::HashSum;

use crate::MhmCore;

/// A memory the ISA's `save_hash` / `restore_hash` / `minus_hash`
/// instructions can address.
pub trait MhmBus {
    /// Reads the 64-bit word at `addr`.
    fn read(&self, addr: u64) -> u64;
    /// Writes the 64-bit word at `addr`.
    fn write(&mut self, addr: u64, value: u64);
}

impl MhmBus for std::collections::HashMap<u64, u64> {
    fn read(&self, addr: u64) -> u64 {
        *self.get(&addr).unwrap_or(&0)
    }
    fn write(&mut self, addr: u64, value: u64) {
        self.insert(addr, value);
    }
}

/// The MHM instruction set (Figure 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Start hashing the values of memory writes.
    StartHashing,
    /// Stop hashing the values of memory writes.
    StopHashing,
    /// Save the TH register to memory location `addr`.
    SaveHash {
        /// Destination address.
        addr: u64,
    },
    /// Restore the TH register from memory location `addr`.
    RestoreHash {
        /// Source address.
        addr: u64,
    },
    /// Subtract the hash of the current value of the memory at `addr`
    /// from TH.
    MinusHash {
        /// Target address.
        addr: u64,
        /// Whether the location holds an FP value (routes through the
        /// round-off unit when rounding is enabled).
        is_fp: bool,
    },
    /// Add to TH the hash of `val` as if `val` were the current value at
    /// memory location `addr`.
    PlusHash {
        /// Target address.
        addr: u64,
        /// The value to hash in.
        val: u64,
        /// Whether the value is FP.
        is_fp: bool,
    },
    /// Start rounding-off FP values before hashing.
    StartFpRounding,
    /// Stop rounding-off FP values before hashing.
    StopFpRounding,
}

/// Executes one instruction against a core and its memory.
pub fn execute<B: MhmBus>(core: &mut MhmCore, bus: &mut B, instr: Instruction) {
    match instr {
        Instruction::StartHashing => core.start_hashing(),
        Instruction::StopHashing => core.stop_hashing(),
        Instruction::SaveHash { addr } => bus.write(addr, core.save_hash().as_raw()),
        Instruction::RestoreHash { addr } => core.restore_hash(HashSum::from_raw(bus.read(addr))),
        Instruction::MinusHash { addr, is_fp } => {
            let current = bus.read(addr);
            core.minus_hash(addr, current, is_fp);
        }
        Instruction::PlusHash { addr, val, is_fp } => core.plus_hash(addr, val, is_fp),
        Instruction::StartFpRounding => core.start_fp_rounding(),
        Instruction::StopFpRounding => core.stop_fp_rounding(),
    }
}

/// Executes a straight-line instruction sequence.
pub fn execute_all<B: MhmBus>(core: &mut MhmCore, bus: &mut B, program: &[Instruction]) {
    for &instr in program {
        execute(core, bus, instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn context_switch_sequence() {
        // OS saves thread A's TH, runs thread B, restores A — exactly the
        // virtualization story of Section 3.3.
        let mut core = MhmCore::new();
        let mut mem: HashMap<u64, u64> = HashMap::new();

        core.on_store(0x10, 0, 7, false); // thread A runs
        let a_th = core.th();

        execute(&mut core, &mut mem, Instruction::SaveHash { addr: 0x900 });
        core.reset(); // thread B gets a fresh TH
        core.on_store(0x20, 0, 9, false); // thread B runs

        execute(
            &mut core,
            &mut mem,
            Instruction::RestoreHash { addr: 0x900 },
        );
        assert_eq!(core.th(), a_th);
    }

    #[test]
    fn stop_start_hashing_brackets_tool_code() {
        let mut core = MhmCore::new();
        let mut mem: HashMap<u64, u64> = HashMap::new();
        core.on_store(1, 0, 1, false);
        let before = core.th();
        execute_all(&mut core, &mut mem, &[Instruction::StopHashing]);
        core.on_store(2, 0, 99, false); // analysis-tool write: invisible
        execute(&mut core, &mut mem, Instruction::StartHashing);
        assert_eq!(core.th(), before);
    }

    #[test]
    fn minus_plus_pair_deletes_a_variable() {
        // The Section 2.2 example: ignore G by
        // SH = SH ⊕ h(G, initial) ⊖ h(G, current).
        let g = 0x40u64;
        let mut core = MhmCore::new();
        let mut mem: HashMap<u64, u64> = HashMap::new();
        mem.write(g, 2); // initial value 2
        core.on_store(g, 2, 12, false);
        mem.write(g, 12);

        execute_all(
            &mut core,
            &mut mem,
            &[
                Instruction::MinusHash {
                    addr: g,
                    is_fp: false,
                },
                Instruction::PlusHash {
                    addr: g,
                    val: 2,
                    is_fp: false,
                },
            ],
        );
        // Equivalent to never having changed G.
        assert_eq!(core.th(), HashSum::ZERO);
    }

    #[test]
    fn fp_rounding_toggles() {
        let mut core = MhmCore::new();
        let mut mem: HashMap<u64, u64> = HashMap::new();
        execute(&mut core, &mut mem, Instruction::StartFpRounding);
        assert!(core.fp_rounding_enabled());
        execute(&mut core, &mut mem, Instruction::StopFpRounding);
        assert!(!core.fp_rounding_enabled());
    }

    #[test]
    fn minus_hash_respects_fp_rounding() {
        let g = 0x50u64;
        let noisy: f64 = 0.1 + 0.2 + 0.3;
        let clean: f64 = 0.6;
        let mut core = MhmCore::new();
        let mut mem: HashMap<u64, u64> = HashMap::new();
        core.start_fp_rounding();
        core.on_store(g, 0, noisy.to_bits(), true);
        mem.write(g, noisy.to_bits());
        // Remove via minus_hash with the *clean* expectation: rounding
        // makes them match, so the contribution of the write cancels
        // against plus_hash of the rounded zero-state.
        execute_all(
            &mut core,
            &mut mem,
            &[
                Instruction::MinusHash {
                    addr: g,
                    is_fp: true,
                },
                Instruction::PlusHash {
                    addr: g,
                    val: 0,
                    is_fp: true,
                },
            ],
        );
        let _ = clean;
        assert_eq!(core.th(), HashSum::ZERO);
    }
}
