//! The per-core MHM unit: TH register, hash unit, FP round-off unit.

use adhash::{FpRound, HashSum, IncHasher, Mix64Hasher};

/// One core's Memory-State Hashing Module (Figure 3(a)).
///
/// The unit observes every store retired into the L1 (address, old value,
/// new value, FP flag) and maintains the 64-bit Thread Hash register with
/// core-local operations only. Software reads or restores the register
/// (for virtualization and context switching) and can surgically remove a
/// location's contribution (`minus_hash`/`plus_hash`) to exclude
/// nondeterministic structures.
///
/// # Example
///
/// ```
/// use mhm::MhmCore;
///
/// let mut m = MhmCore::new();
/// m.on_store(0x40, 0, 7, false);
/// let saved = m.save_hash(); // context switch out…
/// let mut other = MhmCore::new();
/// other.restore_hash(saved); // …and back in on a different core
/// assert_eq!(m.th(), other.th());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MhmCore {
    th: IncHasher<Mix64Hasher>,
    hashing_enabled: bool,
    fp_rounding_enabled: bool,
    rounding: FpRound,
}

impl Default for MhmCore {
    fn default() -> Self {
        MhmCore::new()
    }
}

impl MhmCore {
    /// Creates a unit with hashing enabled, FP rounding disabled, and the
    /// default rounding mode (nearest 0.001) configured.
    pub fn new() -> Self {
        MhmCore::with_rounding(FpRound::default())
    }

    /// Creates a unit with an explicit rounding mode (the `CNTR` inputs
    /// of Section 3.1 for expert numerical programmers).
    pub fn with_rounding(rounding: FpRound) -> Self {
        MhmCore {
            th: IncHasher::new(Mix64Hasher::default()),
            hashing_enabled: true,
            fp_rounding_enabled: false,
            rounding,
        }
    }

    /// The current Thread Hash register value.
    pub fn th(&self) -> HashSum {
        self.th.sum()
    }

    /// `start_hashing`: enable the store-observation datapath.
    pub fn start_hashing(&mut self) {
        self.hashing_enabled = true;
    }

    /// `stop_hashing`: disable the datapath (e.g. while an analysis tool
    /// runs in the checked thread's address space).
    pub fn stop_hashing(&mut self) {
        self.hashing_enabled = false;
    }

    /// Returns `true` if the datapath is enabled.
    pub fn hashing_enabled(&self) -> bool {
        self.hashing_enabled
    }

    /// `start_FP_rounding`: round FP store values before hashing.
    pub fn start_fp_rounding(&mut self) {
        self.fp_rounding_enabled = true;
    }

    /// `stop_FP_rounding`: hash FP values bit-exactly.
    ///
    /// Toggling rounding mid-run voids the telescoping property of the
    /// incremental hash for locations written both before and after the
    /// toggle; toggle only at points where the affected locations are
    /// excluded or quiescent.
    pub fn stop_fp_rounding(&mut self) {
        self.fp_rounding_enabled = false;
    }

    /// Returns `true` if FP rounding is enabled.
    pub fn fp_rounding_enabled(&self) -> bool {
        self.fp_rounding_enabled
    }

    /// The configured rounding mode.
    pub fn rounding(&self) -> FpRound {
        self.rounding
    }

    /// Reconfigures the rounding mode (see [`stop_fp_rounding`] for the
    /// mid-run caveat).
    ///
    /// [`stop_fp_rounding`]: MhmCore::stop_fp_rounding
    pub fn set_rounding(&mut self, rounding: FpRound) {
        self.rounding = rounding;
    }

    /// Runs a raw value through the FP round-off unit exactly as the
    /// store datapath would.
    pub fn round_off(&self, value: u64, is_fp: bool) -> u64 {
        if is_fp && self.fp_rounding_enabled {
            self.rounding.apply_bits(value)
        } else {
            value
        }
    }

    /// The store datapath: observes a retired store of `new` over `old`
    /// at virtual address `vaddr`. `is_fp` is the write-buffer flag set
    /// by the compiler for FP store instructions.
    pub fn on_store(&mut self, vaddr: u64, old: u64, new: u64, is_fp: bool) {
        if !self.hashing_enabled {
            return;
        }
        let old = self.round_off(old, is_fp);
        let new = self.round_off(new, is_fp);
        self.th.on_write(vaddr, old, new);
    }

    /// `save_hash`: read the TH register (for context switch / migration
    /// / virtualization — the OS saves it like any other register).
    pub fn save_hash(&self) -> HashSum {
        self.th.sum()
    }

    /// `restore_hash`: load the TH register.
    pub fn restore_hash(&mut self, value: HashSum) {
        self.th.set_sum(value);
    }

    /// `minus_hash`: subtract the hash of the (rounded, if FP) current
    /// value at `addr` from TH.
    pub fn minus_hash(&mut self, addr: u64, current: u64, is_fp: bool) {
        let v = self.round_off(current, is_fp);
        self.th.remove_location(addr, v);
    }

    /// `plus_hash`: add the hash of `value` at `addr` to TH, as if
    /// `value` were the current content of that location.
    pub fn plus_hash(&mut self, addr: u64, value: u64, is_fp: bool) {
        let v = self.round_off(value, is_fp);
        self.th.add_location(addr, v);
    }

    /// Drops a freed word's contribution back to the zero baseline:
    /// the fused equivalent of `minus_hash(addr, value)` followed by
    /// `plus_hash(addr, 0)`, applied as one write delta so the address
    /// mixing is shared between the two terms. Bit-identical to the pair
    /// by the commutative group laws.
    pub fn free_word(&mut self, addr: u64, value: u64, is_fp: bool) {
        let old = self.round_off(value, is_fp);
        let new = self.round_off(0, is_fp);
        self.th.on_write(addr, old, new);
    }

    /// Resets the TH register to zero (run start).
    pub fn reset(&mut self) {
        self.th.reset();
    }

    /// Combines per-core TH registers into the global State Hash — the
    /// rare, software-side operation performed at barriers.
    pub fn combine<'a, I>(cores: I) -> HashSum
    where
        I: IntoIterator<Item = &'a MhmCore>,
    {
        cores.into_iter().map(|c| c.th()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_state_hash_is_interleaving_independent() {
        let g = 0x1000;
        let mut a0 = MhmCore::new();
        let mut a1 = MhmCore::new();
        a0.on_store(g, 2, 9, false);
        a1.on_store(g, 9, 12, false);

        let mut b0 = MhmCore::new();
        let mut b1 = MhmCore::new();
        b1.on_store(g, 2, 5, false);
        b0.on_store(g, 5, 12, false);

        // Thread hashes differ (internal nondeterminism is visible)…
        assert_ne!(a0.th(), b0.th());
        // …but the combined State Hash is identical.
        assert_eq!(MhmCore::combine([&a0, &a1]), MhmCore::combine([&b0, &b1]));
    }

    #[test]
    fn stop_hashing_freezes_th() {
        let mut m = MhmCore::new();
        m.on_store(1, 0, 1, false);
        let before = m.th();
        m.stop_hashing();
        assert!(!m.hashing_enabled());
        m.on_store(1, 1, 2, false);
        assert_eq!(m.th(), before);
        m.start_hashing();
        m.on_store(1, 2, 3, false);
        assert_ne!(m.th(), before);
    }

    #[test]
    fn save_restore_supports_migration() {
        let mut m = MhmCore::new();
        m.on_store(1, 0, 42, false);
        let saved = m.save_hash();
        // Thread migrates to another core; that core adopts the TH.
        let mut other = MhmCore::new();
        other.on_store(9, 0, 9, false); // residue from a previous tenant
        other.restore_hash(saved);
        other.on_store(1, 42, 43, false);
        // Equivalent to having stayed on one core.
        let mut reference = MhmCore::new();
        reference.on_store(1, 0, 42, false);
        reference.on_store(1, 42, 43, false);
        assert_eq!(other.th(), reference.th());
    }

    #[test]
    fn fp_rounding_absorbs_reduction_noise_in_th() {
        let sum_a: f64 = 0.1 + 0.2 + 0.3;
        let sum_b: f64 = 0.3 + 0.2 + 0.1;
        assert_ne!(sum_a.to_bits(), sum_b.to_bits());

        let run = |v: f64| {
            let mut m = MhmCore::new();
            m.start_fp_rounding();
            m.on_store(8, 0, v.to_bits(), true);
            m.th()
        };
        assert_eq!(run(sum_a), run(sum_b));

        // Without rounding the hashes differ.
        let run_exact = |v: f64| {
            let mut m = MhmCore::new();
            m.on_store(8, 0, v.to_bits(), true);
            m.th()
        };
        assert_ne!(run_exact(sum_a), run_exact(sum_b));
    }

    #[test]
    fn rounding_applies_only_to_fp_stores() {
        let mut m = MhmCore::new();
        m.start_fp_rounding();
        assert!(m.fp_rounding_enabled());
        // An integer store whose bit pattern happens to look like a tiny
        // double must NOT be rounded.
        let tricky = 0.0001f64.to_bits();
        let mut exact = MhmCore::new();
        exact.on_store(8, 0, tricky, false);
        m.on_store(8, 0, tricky, false);
        assert_eq!(m.th(), exact.th());
    }

    #[test]
    fn minus_plus_hash_excludes_a_location() {
        // Write two locations, then delete one; the TH must equal a run
        // that never wrote the deleted location.
        let mut m = MhmCore::new();
        m.on_store(0x10, 0, 5, false);
        m.on_store(0x18, 0, 6, false);
        m.minus_hash(0x18, 6, false); // remove current contribution
        m.plus_hash(0x18, 0, false); // restore initial (zero) contribution

        let mut reference = MhmCore::new();
        reference.on_store(0x10, 0, 5, false);
        assert_eq!(m.th(), reference.th());
    }

    #[test]
    fn reset_clears_register() {
        let mut m = MhmCore::new();
        m.on_store(1, 0, 1, false);
        m.reset();
        assert_eq!(m.th(), HashSum::ZERO);
    }

    #[test]
    fn custom_rounding_mode_is_used() {
        let mut m = MhmCore::with_rounding(FpRound::MaskMantissa { bits: 20 });
        assert_eq!(m.rounding(), FpRound::MaskMantissa { bits: 20 });
        m.set_rounding(FpRound::FloorDecimal { digits: 2 });
        m.start_fp_rounding();
        let a = m.round_off(1.239f64.to_bits(), true);
        assert_eq!(f64::from_bits(a), 1.23);
        m.stop_fp_rounding();
        assert!(!m.fp_rounding_enabled());
        assert_eq!(m.round_off(1.239f64.to_bits(), true), 1.239f64.to_bits());
    }

    #[test]
    fn combine_of_no_cores_is_zero() {
        assert_eq!(MhmCore::combine([]), HashSum::ZERO);
    }
}
