//! Property tests of the corpus entry format: encode/decode identity,
//! fingerprint stability under field reordering, and a quarantine
//! classification per corruption class.

use std::sync::Arc;

use adhash::{FpRound, HashSum};
use corpus::{decode_entry, encode_entry, fingerprint_fields, Corruption};
use instantcheck::{CachedRun, CheckpointRecord, RunHashes, RunKey, Scheme};
use minicheck::{check, Gen};
use obs::Event;
use tsim::{AllocLog, BarrierId, CheckpointKind, SwitchPolicy};

/// A workload id exercising the escaper: spaces, percent signs, tabs,
/// and plain alphanumerics.
fn gen_workload(g: &mut Gen) -> String {
    let alphabet = [
        "app", " ", "%", "%25", "\t", "x1", ":scaled", "_", "=", ";", "b",
    ];
    let parts = g.vec_of(1, 6, |g| *g.pick(&alphabet));
    parts.concat()
}

fn gen_key(g: &mut Gen) -> RunKey {
    RunKey {
        workload: gen_workload(g),
        scheme: *g.pick(&[Scheme::Native, Scheme::HwInc, Scheme::SwInc, Scheme::SwTr]),
        seed: g.u64(),
        lib_seed: g.u64(),
        switch: *g.pick(&[
            SwitchPolicy::SyncOnly,
            SwitchPolicy::EveryAccess,
            SwitchPolicy::EveryNth(3),
        ]),
        max_steps: g.u64_in(1, 1 << 40),
        rounding: match g.usize_in(0, 3) {
            0 => None,
            1 => Some(FpRound::BitExact),
            _ => Some(FpRound::MaskMantissa {
                bits: g.u64_in(1, 52) as u32,
            }),
        },
        ignore_token: g.u64(),
        fault_token: g.u64(),
        cache_model: g.bool(),
        alloc_seed: g.bool().then(|| g.u64()),
    }
}

fn gen_run(g: &mut Gen) -> CachedRun {
    let checkpoints = g.vec_of(0, 8, |g| CheckpointRecord {
        kind: match g.usize_in(0, 3) {
            0 => CheckpointKind::Barrier(BarrierId::from_index(g.usize_in(0, 16))),
            1 => {
                const LABELS: [&str; 3] = ["iter end", "phase 2", "a%b"];
                CheckpointKind::Manual(LABELS[g.usize_in(0, LABELS.len())])
            }
            _ => CheckpointKind::End,
        },
        hash: HashSum::from_raw(g.u64()),
    });
    let cache = g.bool().then(|| mhm::CacheStats {
        hits: g.u64(),
        misses: g.u64(),
        mhm_reads: g.u64(),
        mhm_read_misses: g.u64(),
    });
    let alloc_log = g.bool().then(|| {
        let mut log = AllocLog::default();
        for _ in 0..g.usize_in(0, 10) {
            log.insert(g.usize_in(0, 8), g.u64_in(0, 64), g.u64());
        }
        Arc::new(log)
    });
    let sim_trace = g.bool().then(|| {
        g.vec_of(0, 6, |g| {
            let mut ev = Event::instant(g.u64(), g.u32(), "sched");
            if g.bool() {
                ev = ev.with_arg("tid", g.u64()).with_arg("why", "preempt");
            }
            ev
        })
    });
    CachedRun {
        hashes: RunHashes {
            checkpoints,
            output_digest: g.u64(),
            extra_instr: g.u64(),
            stores: g.u64(),
            hash_updates: g.u64(),
            cache,
        },
        steps: g.u64(),
        native_instr: g.u64(),
        zero_fill_instr: g.u64(),
        alloc_log,
        sim_trace,
    }
}

#[test]
fn encode_decode_is_the_identity() {
    check("corpus_encode_decode_identity", 128, |g: &mut Gen| {
        let key = gen_key(g);
        let run = gen_run(g);
        let text = encode_entry(&key, &run);
        let (tokens, decoded) = decode_entry(&text).unwrap_or_else(|why| {
            panic!("fresh entry failed to decode: {why}\n{text}");
        });
        let expected: Vec<(String, String)> = key
            .tokens()
            .into_iter()
            .map(|(l, v)| (l.to_owned(), v))
            .collect();
        assert_eq!(tokens, expected, "key tokens round-trip");
        // Encoding is a pure function of (key, run), so decode is the
        // identity exactly when re-encoding reproduces the bytes.
        assert_eq!(
            encode_entry(&key, &decoded),
            text,
            "decoded run re-encodes identically"
        );
    });
}

#[test]
fn fingerprints_are_order_independent_and_value_sensitive() {
    check("corpus_fingerprint_stability", 128, |g: &mut Gen| {
        let key = gen_key(g);
        let tokens = key.tokens();
        let fields: Vec<(&str, &str)> = tokens.iter().map(|(l, v)| (*l, v.as_str())).collect();
        let base = fingerprint_fields(&fields);

        // Any rotation of the fields fingerprints identically.
        let mut rotated = fields.clone();
        rotated.rotate_left(g.usize_in(1, fields.len()));
        assert_eq!(base, fingerprint_fields(&rotated), "order-independent");

        // Changing any one field's value moves the fingerprint.
        let victim = g.usize_in(0, fields.len());
        let mut changed: Vec<(&str, String)> =
            tokens.iter().map(|(l, v)| (*l, v.clone())).collect();
        changed[victim].1.push('!');
        let changed_fields: Vec<(&str, &str)> =
            changed.iter().map(|(l, v)| (*l, v.as_str())).collect();
        assert_ne!(
            base,
            fingerprint_fields(&changed_fields),
            "value-sensitive in field {}",
            fields[victim].0
        );
    });
}

#[test]
fn every_corruption_class_is_detected_and_classified() {
    check("corpus_corruption_classes", 96, |g: &mut Gen| {
        let key = gen_key(g);
        let run = gen_run(g);
        let text = encode_entry(&key, &run);
        let header_end = {
            let mut pos = 0;
            for _ in 0..4 {
                pos += text[pos..].find('\n').unwrap() + 1;
            }
            pos
        };
        match g.usize_in(0, 5) {
            0 => {
                // Bad magic.
                let bad = text.replacen("icorpus", "zcorpus", 1);
                assert!(matches!(decode_entry(&bad), Err(Corruption::BadMagic)));
            }
            1 => {
                // A future format version.
                let bad = text.replacen("icorpus 1", "icorpus 2", 1);
                assert!(matches!(
                    decode_entry(&bad),
                    Err(Corruption::VersionMismatch { found: 2 })
                ));
            }
            2 => {
                // Truncation: drop bytes off the end of the body.
                let body_len = text.len() - header_end;
                let keep = g.usize_in(0, body_len);
                let bad = &text[..header_end + keep];
                match decode_entry(bad) {
                    Err(Corruption::Truncated { expected, found }) => {
                        assert_eq!(expected, body_len);
                        assert_eq!(found, keep);
                    }
                    other => panic!("expected Truncated, got {other:?}"),
                }
            }
            3 => {
                // Flip one body byte (same length): the checksum rejects
                // it before any field parse could misread it.
                let body_len = text.len() - header_end;
                if body_len == 0 {
                    return; // no body byte to flip for this case
                }
                let at = header_end + g.usize_in(0, body_len);
                let mut bytes = text.clone().into_bytes();
                bytes[at] ^= 0x01;
                let Ok(bad) = String::from_utf8(bytes) else {
                    return; // flip broke UTF-8; fs::read_to_string would too
                };
                assert!(matches!(decode_entry(&bad), Err(Corruption::BadChecksum)));
            }
            _ => {
                // Internally consistent header over a junk body: only
                // the field parser can catch it.
                let body = "key a=1\nnot a valid line\n";
                let bad = format!(
                    "icorpus 1\nfp {:032x}\nlen {}\nsum {:016x}\n{body}",
                    0u128,
                    body.len(),
                    corpus_checksum(body),
                );
                assert!(
                    matches!(decode_entry(&bad), Err(Corruption::Malformed(_))),
                    "junk body classified as malformed"
                );
            }
        }
    });
}

/// FNV-1a, duplicated here so the test can forge a "valid" checksum
/// without reaching into the crate's private helper.
fn corpus_checksum(body: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in body.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
