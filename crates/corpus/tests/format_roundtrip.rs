//! Property tests of the corpus entry format: encode/decode identity,
//! fingerprint stability under field reordering, a quarantine
//! classification per corruption class — plus the campaign-spec codec
//! the same fingerprints key off: `CampaignSpec` → JSON →
//! `CampaignSpec` is the identity, and each run-content field moves
//! the derived `RunKey` fingerprint while campaign-shape fields
//! (runs, policy, deadline, jobs) deliberately do not.

use std::sync::Arc;

use adhash::{FpRound, HashSum};
use corpus::{decode_entry, encode_entry, fingerprint_fields, fingerprint_key, Corruption};
use instantcheck::{
    CachedRun, CampaignSpec, CheckpointRecord, FailurePolicy, IgnoreSpec, RunHashes, RunKey, Scheme,
};
use minicheck::{check, Gen};
use obs::Event;
use tsim::{AllocLog, BarrierId, CheckpointKind, FaultPlan, SwitchPolicy, Trigger, FAULT_KINDS};

/// A workload id exercising the escaper: spaces, percent signs, tabs,
/// and plain alphanumerics.
fn gen_workload(g: &mut Gen) -> String {
    let alphabet = [
        "app", " ", "%", "%25", "\t", "x1", ":scaled", "_", "=", ";", "b",
    ];
    let parts = g.vec_of(1, 6, |g| *g.pick(&alphabet));
    parts.concat()
}

fn gen_key(g: &mut Gen) -> RunKey {
    RunKey {
        workload: gen_workload(g),
        scheme: *g.pick(&[Scheme::Native, Scheme::HwInc, Scheme::SwInc, Scheme::SwTr]),
        seed: g.u64(),
        lib_seed: g.u64(),
        switch: *g.pick(&[
            SwitchPolicy::SyncOnly,
            SwitchPolicy::EveryAccess,
            SwitchPolicy::EveryNth(3),
        ]),
        max_steps: g.u64_in(1, 1 << 40),
        rounding: match g.usize_in(0, 3) {
            0 => None,
            1 => Some(FpRound::BitExact),
            _ => Some(FpRound::MaskMantissa {
                bits: g.u64_in(1, 52) as u32,
            }),
        },
        ignore_token: g.u64(),
        fault_token: g.u64(),
        cache_model: g.bool(),
        alloc_seed: g.bool().then(|| g.u64()),
    }
}

fn gen_run(g: &mut Gen) -> CachedRun {
    let checkpoints = g.vec_of(0, 8, |g| CheckpointRecord {
        kind: match g.usize_in(0, 3) {
            0 => CheckpointKind::Barrier(BarrierId::from_index(g.usize_in(0, 16))),
            1 => {
                const LABELS: [&str; 3] = ["iter end", "phase 2", "a%b"];
                CheckpointKind::Manual(LABELS[g.usize_in(0, LABELS.len())])
            }
            _ => CheckpointKind::End,
        },
        hash: HashSum::from_raw(g.u64()),
    });
    let cache = g.bool().then(|| mhm::CacheStats {
        hits: g.u64(),
        misses: g.u64(),
        mhm_reads: g.u64(),
        mhm_read_misses: g.u64(),
    });
    let alloc_log = g.bool().then(|| {
        let mut log = AllocLog::default();
        for _ in 0..g.usize_in(0, 10) {
            log.insert(g.usize_in(0, 8), g.u64_in(0, 64), g.u64());
        }
        Arc::new(log)
    });
    let sim_trace = g.bool().then(|| {
        g.vec_of(0, 6, |g| {
            let mut ev = Event::instant(g.u64(), g.u32(), "sched");
            if g.bool() {
                ev = ev.with_arg("tid", g.u64()).with_arg("why", "preempt");
            }
            ev
        })
    });
    CachedRun {
        hashes: RunHashes {
            checkpoints,
            output_digest: g.u64(),
            extra_instr: g.u64(),
            stores: g.u64(),
            hash_updates: g.u64(),
            cache,
        },
        steps: g.u64(),
        native_instr: g.u64(),
        zero_fill_instr: g.u64(),
        alloc_log,
        sim_trace,
    }
}

#[test]
fn encode_decode_is_the_identity() {
    check("corpus_encode_decode_identity", 128, |g: &mut Gen| {
        let key = gen_key(g);
        let run = gen_run(g);
        let text = encode_entry(&key, &run);
        let (tokens, decoded) = decode_entry(&text).unwrap_or_else(|why| {
            panic!("fresh entry failed to decode: {why}\n{text}");
        });
        let expected: Vec<(String, String)> = key
            .tokens()
            .into_iter()
            .map(|(l, v)| (l.to_owned(), v))
            .collect();
        assert_eq!(tokens, expected, "key tokens round-trip");
        // Encoding is a pure function of (key, run), so decode is the
        // identity exactly when re-encoding reproduces the bytes.
        assert_eq!(
            encode_entry(&key, &decoded),
            text,
            "decoded run re-encodes identically"
        );
    });
}

#[test]
fn fingerprints_are_order_independent_and_value_sensitive() {
    check("corpus_fingerprint_stability", 128, |g: &mut Gen| {
        let key = gen_key(g);
        let tokens = key.tokens();
        let fields: Vec<(&str, &str)> = tokens.iter().map(|(l, v)| (*l, v.as_str())).collect();
        let base = fingerprint_fields(&fields);

        // Any rotation of the fields fingerprints identically.
        let mut rotated = fields.clone();
        rotated.rotate_left(g.usize_in(1, fields.len()));
        assert_eq!(base, fingerprint_fields(&rotated), "order-independent");

        // Changing any one field's value moves the fingerprint.
        let victim = g.usize_in(0, fields.len());
        let mut changed: Vec<(&str, String)> =
            tokens.iter().map(|(l, v)| (*l, v.clone())).collect();
        changed[victim].1.push('!');
        let changed_fields: Vec<(&str, &str)> =
            changed.iter().map(|(l, v)| (*l, v.as_str())).collect();
        assert_ne!(
            base,
            fingerprint_fields(&changed_fields),
            "value-sensitive in field {}",
            fields[victim].0
        );
    });
}

#[test]
fn every_corruption_class_is_detected_and_classified() {
    check("corpus_corruption_classes", 96, |g: &mut Gen| {
        let key = gen_key(g);
        let run = gen_run(g);
        let text = encode_entry(&key, &run);
        let header_end = {
            let mut pos = 0;
            for _ in 0..4 {
                pos += text[pos..].find('\n').unwrap() + 1;
            }
            pos
        };
        match g.usize_in(0, 5) {
            0 => {
                // Bad magic.
                let bad = text.replacen("icorpus", "zcorpus", 1);
                assert!(matches!(decode_entry(&bad), Err(Corruption::BadMagic)));
            }
            1 => {
                // A future format version.
                let bad = text.replacen("icorpus 1", "icorpus 2", 1);
                assert!(matches!(
                    decode_entry(&bad),
                    Err(Corruption::VersionMismatch { found: 2 })
                ));
            }
            2 => {
                // Truncation: drop bytes off the end of the body.
                let body_len = text.len() - header_end;
                let keep = g.usize_in(0, body_len);
                let bad = &text[..header_end + keep];
                match decode_entry(bad) {
                    Err(Corruption::Truncated { expected, found }) => {
                        assert_eq!(expected, body_len);
                        assert_eq!(found, keep);
                    }
                    other => panic!("expected Truncated, got {other:?}"),
                }
            }
            3 => {
                // Flip one body byte (same length): the checksum rejects
                // it before any field parse could misread it.
                let body_len = text.len() - header_end;
                if body_len == 0 {
                    return; // no body byte to flip for this case
                }
                let at = header_end + g.usize_in(0, body_len);
                let mut bytes = text.clone().into_bytes();
                bytes[at] ^= 0x01;
                let Ok(bad) = String::from_utf8(bytes) else {
                    return; // flip broke UTF-8; fs::read_to_string would too
                };
                assert!(matches!(decode_entry(&bad), Err(Corruption::BadChecksum)));
            }
            _ => {
                // Internally consistent header over a junk body: only
                // the field parser can catch it.
                let body = "key a=1\nnot a valid line\n";
                let bad = format!(
                    "icorpus 1\nfp {:032x}\nlen {}\nsum {:016x}\n{body}",
                    0u128,
                    body.len(),
                    corpus_checksum(body),
                );
                assert!(
                    matches!(decode_entry(&bad), Err(Corruption::Malformed(_))),
                    "junk body classified as malformed"
                );
            }
        }
    });
}

fn gen_switch(g: &mut Gen) -> SwitchPolicy {
    match g.usize_in(0, 3) {
        0 => SwitchPolicy::SyncOnly,
        1 => SwitchPolicy::EveryAccess,
        _ => SwitchPolicy::EveryNth(g.u64_in(1, 9) as u32),
    }
}

fn gen_rounding(g: &mut Gen) -> Option<FpRound> {
    match g.usize_in(0, 5) {
        0 => None,
        1 => Some(FpRound::BitExact),
        2 => Some(FpRound::MaskMantissa {
            bits: g.u64_in(1, 52) as u32,
        }),
        3 => Some(FpRound::FloorDecimal {
            digits: g.u64_in(0, 9) as u32,
        }),
        _ => Some(FpRound::NearestDecimal {
            digits: g.u64_in(0, 9) as u32,
        }),
    }
}

fn gen_spec(g: &mut Gen) -> CampaignSpec {
    let scheme = *g.pick(&[Scheme::Native, Scheme::HwInc, Scheme::SwInc, Scheme::SwTr]);
    let mut spec = CampaignSpec::new(gen_workload(g), scheme);
    spec.runs = g.usize_in(1, 64);
    spec.base_seed = g.u64();
    spec.lib_seed = g.u64();
    spec.switch = gen_switch(g);
    spec.rounding = gen_rounding(g);
    if g.bool() {
        spec.ignore = IgnoreSpec::new()
            .ignore_global(gen_workload(g))
            .ignore_site_offsets(gen_workload(g), g.vec_of(0, 4, |g| g.usize_in(0, 64)));
    }
    spec.policy = match g.usize_in(0, 3) {
        0 => FailurePolicy::Abort,
        1 => FailurePolicy::Skip {
            max_failures: g.usize_in(0, 32),
        },
        _ => FailurePolicy::Retry {
            max_retries: g.usize_in(0, 5),
            reseed: g.bool(),
        },
    };
    spec.deadline_ms = g.bool().then(|| g.u64_in(1, 1 << 32));
    spec.max_steps = g.u64_in(1, 1 << 40);
    spec.jobs = g.bool().then(|| g.usize_in(1, 16));
    spec.cache_model = g.bool();
    spec.corpus_dir = g.bool().then(|| gen_workload(g));
    spec.corpus_segment_bytes = g.bool().then(|| g.u64_in(4096, 1 << 30));
    spec.corpus_max_bytes = g.bool().then(|| g.u64_in(1 << 20, 1 << 40));
    spec.corpus_cache_slots = g.bool().then(|| g.u64_in(1, 1 << 20));
    // Fault plans on run slots ≥ 1 only: the fingerprint test below
    // mutates slot 0 and must know it starts fault-free.
    spec.fault_plans = g.vec_of(0, 3, |g| {
        let mut plan = FaultPlan::new(g.u64());
        plan = plan.with(
            *g.pick(&FAULT_KINDS),
            match g.usize_in(0, 3) {
                0 => Trigger::Never,
                1 => Trigger::Nth(g.u64_in(0, 100)),
                _ => Trigger::Rate {
                    num: g.u64_in(1, 4),
                    denom: g.u64_in(4, 64),
                },
            },
        );
        (g.usize_in(1, 8), plan)
    });
    spec
}

#[test]
fn spec_json_round_trip_is_the_identity() {
    check("spec_json_round_trip", 160, |g: &mut Gen| {
        let spec = gen_spec(g);
        let json = spec.to_json();
        let back = CampaignSpec::from_json(&json)
            .unwrap_or_else(|why| panic!("fresh spec failed to parse: {why}\n{json}"));
        assert_eq!(back, spec, "decode is the identity");
        assert_eq!(back.to_json(), json, "re-encode is byte-stable");
    });
}

#[test]
fn each_run_content_field_moves_the_fingerprint_and_shape_fields_do_not() {
    check("spec_field_fingerprints", 128, |g: &mut Gen| {
        let spec = gen_spec(g);
        let fp = |s: &CampaignSpec| fingerprint_key(&s.run_key(0, s.base_seed, None));
        let base = fp(&spec);

        // Every run-content field: a single-field mutation moves the
        // derived run-key fingerprint.
        let mut moved: Vec<(&str, CampaignSpec)> = Vec::new();
        let mut m = spec.clone();
        m.workload.push('!');
        moved.push(("workload", m));
        let mut m = spec.clone();
        m.scheme = match m.scheme {
            Scheme::Native => Scheme::HwInc,
            Scheme::HwInc => Scheme::SwInc,
            Scheme::SwInc => Scheme::SwTr,
            Scheme::SwTr => Scheme::Native,
        };
        moved.push(("scheme", m));
        let mut m = spec.clone();
        m.base_seed = m.base_seed.wrapping_add(1);
        moved.push(("base_seed", m));
        let mut m = spec.clone();
        m.lib_seed = m.lib_seed.wrapping_add(1);
        moved.push(("lib_seed", m));
        let mut m = spec.clone();
        m.switch = match m.switch {
            SwitchPolicy::SyncOnly => SwitchPolicy::EveryAccess,
            SwitchPolicy::EveryAccess => SwitchPolicy::EveryNth(2),
            SwitchPolicy::EveryNth(_) => SwitchPolicy::SyncOnly,
        };
        moved.push(("switch", m));
        let mut m = spec.clone();
        m.rounding = match m.rounding {
            None => Some(FpRound::BitExact),
            Some(_) => None,
        };
        moved.push(("rounding", m));
        let mut m = spec.clone();
        m.ignore = m.ignore.ignore_global("added-by-mutation");
        moved.push(("ignore", m));
        let mut m = spec.clone();
        m.max_steps += 1;
        moved.push(("max_steps", m));
        let mut m = spec.clone();
        m.cache_model = !m.cache_model;
        moved.push(("cache_model", m));
        let mut m = spec.clone();
        m.fault_plans
            .push((0, FaultPlan::new(7).with(FAULT_KINDS[0], Trigger::Nth(3))));
        moved.push(("fault_plans", m));
        for (field, mutated) in &moved {
            assert_ne!(base, fp(mutated), "mutating {field} must move the key");
        }

        // Campaign-shape fields describe how many runs to do and what
        // to do when one fails — not what a run computes — so they are
        // deliberately outside the key: a recorded corpus stays warm
        // when only the campaign shape changes.
        let mut same: Vec<(&str, CampaignSpec)> = Vec::new();
        let mut m = spec.clone();
        m.runs += 1;
        same.push(("runs", m));
        let mut m = spec.clone();
        m.policy = match m.policy {
            FailurePolicy::Abort => FailurePolicy::Skip { max_failures: 3 },
            _ => FailurePolicy::Abort,
        };
        same.push(("policy", m));
        let mut m = spec.clone();
        m.deadline_ms = match m.deadline_ms {
            None => Some(1000),
            Some(_) => None,
        };
        same.push(("deadline_ms", m));
        let mut m = spec.clone();
        m.jobs = match m.jobs {
            None => Some(4),
            Some(_) => None,
        };
        same.push(("jobs", m));
        let mut m = spec.clone();
        m.corpus_dir = match m.corpus_dir {
            None => Some("elsewhere".into()),
            Some(_) => None,
        };
        m.corpus_segment_bytes = Some(1 << 16);
        m.corpus_max_bytes = Some(1 << 24);
        m.corpus_cache_slots = Some(64);
        same.push(("corpus placement", m));
        for (field, mutated) in &same {
            assert_eq!(
                base,
                fp(mutated),
                "{field} is campaign shape, not run content"
            );
        }
    });
}

/// FNV-1a, duplicated here so the test can forge a "valid" checksum
/// without reaching into the crate's private helper.
fn corpus_checksum(body: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in body.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
