//! Crash-recovery properties of the log-structured corpus.
//!
//! Each test re-executes this test binary as a child process with
//! [`CRASH_ENV`] arming one seeded fault point — `append` (a torn
//! half-record write), `seal-pre` / `seal-post` (either side of the
//! seal rename), or `compact` (live records rewritten, source segment
//! not yet deleted) — lets the child abort mid-operation, then reopens
//! the store it left behind and checks the recovery invariants:
//!
//! * every record fully appended before the crash is recovered
//!   **byte-identically** (warm == cold: re-encoding the recovered run
//!   reproduces the original entry bytes);
//! * the in-flight record is lost cleanly — a miss, never a wrong hit
//!   and never damage to its neighbors;
//! * a torn tail is truncated away and preserved in `quarantine/`;
//! * duplicates left by a crashed compaction resolve by "later wins"
//!   to exactly the pre-crash live set.
//!
//! The suite also pins the migration stance: a PR-4 one-file-per-run
//! store is refused with a typed [`CorpusError::FormatMismatch`],
//! never silently misread.

use std::fs;
use std::os::unix::process::ExitStatusExt;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adhash::HashSum;
use corpus::{encode_entry, Corpus, CorpusError, CorpusOptions, CRASH_ENV};
use detrand::splitmix64;
use instantcheck::{CachedRun, CheckpointRecord, RunCache, RunHashes, RunKey, Scheme};
use tsim::{CheckpointKind, SwitchPolicy};

/// Child-mode trigger: the store directory the child should drive.
const DIR_ENV: &str = "ICSEG_CRASH_TEST_DIR";
/// Child-mode workload: `fill` (distinct keys, in order) or `churn`
/// (overwrite the same keys until compaction triggers).
const MODE_ENV: &str = "ICSEG_CRASH_TEST_MODE";

/// Small segments so a few hundred records exercise sealing and
/// compaction; the engine clamps lower values to this anyway.
const SEGMENT_BYTES: u64 = 4096;

/// Records the `fill` child appends (spanning several segments).
const FILL: u64 = 30;
/// Distinct keys the `churn` child overwrites.
const CHURN_KEYS: u64 = 12;
/// Overwrite rounds in the `churn` child — enough that sealed segments
/// accumulate majority-garbage and compaction fires.
const CHURN_ROUNDS: u64 = 4;

static SERIAL: AtomicU64 = AtomicU64::new(0);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "corpus-crash-{tag}-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_key(seed: u64) -> RunKey {
    RunKey {
        workload: "crashprop:scaled".into(),
        scheme: Scheme::HwInc,
        seed,
        lib_seed: 7,
        switch: SwitchPolicy::SyncOnly,
        max_steps: 50_000,
        rounding: None,
        ignore_token: 0,
        fault_token: 0,
        cache_model: false,
        alloc_seed: None,
    }
}

/// Run content derived from the seed alone, so the parent can verify
/// recovered records byte-for-byte without knowing how far the child
/// got before it died.
fn sample_run(seed: u64) -> CachedRun {
    let checkpoints = (0..8u64)
        .map(|j| CheckpointRecord {
            kind: CheckpointKind::End,
            hash: HashSum::from_raw(splitmix64(seed.wrapping_mul(31) ^ j)),
        })
        .collect();
    CachedRun {
        hashes: RunHashes {
            checkpoints,
            output_digest: splitmix64(seed ^ 0xC4A5),
            extra_instr: seed % 193,
            stores: 1 + seed % 719,
            hash_updates: 1 + seed % 83,
            cache: None,
        },
        steps: 500 + seed % 97,
        native_instr: 2_000 + seed % 389,
        zero_fill_instr: seed % 5,
        alloc_log: None,
        sim_trace: None,
    }
}

fn open_store(dir: &Path) -> Corpus {
    Corpus::open(CorpusOptions::at(dir).segment_bytes(SEGMENT_BYTES)).expect("open log store")
}

/// The child payload. Inert (an immediately-passing test) unless the
/// parent armed it via [`DIR_ENV`]; with it, drives the store until the
/// seeded crash point aborts the process.
#[test]
fn child_drives_the_store() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return;
    };
    let mode = std::env::var(MODE_ENV).unwrap_or_default();
    let store = open_store(Path::new(&dir));
    match mode.as_str() {
        "fill" => {
            for i in 0..FILL {
                store.store(&sample_key(i), &Arc::new(sample_run(i)));
            }
        }
        "churn" => {
            for _ in 0..CHURN_ROUNDS {
                for i in 0..CHURN_KEYS {
                    store.store(&sample_key(i), &Arc::new(sample_run(i)));
                }
            }
        }
        other => panic!("unknown child mode {other:?}"),
    }
    // Reaching this line means the armed crash point never fired; the
    // parent asserts on the SIGABRT it expected and will fail loudly.
}

/// Re-executes this test binary in child mode with one crash point
/// armed, and asserts the child died by `abort()` — proof the fault
/// point fired, as opposed to the workload finishing or panicking.
fn crash_child(dir: &Path, mode: &str, crash: &str) {
    let status = Command::new(std::env::current_exe().expect("current exe"))
        .args(["child_drives_the_store", "--exact"])
        .env(DIR_ENV, dir)
        .env(MODE_ENV, mode)
        .env(CRASH_ENV, crash)
        .output()
        .expect("spawn crash child")
        .status;
    assert_eq!(
        status.signal(),
        Some(6),
        "child with {CRASH_ENV}={crash} should die by SIGABRT, got {status:?}"
    );
}

/// After a crash in the `fill` workload, the recovered store must hold
/// exactly a prefix of the appended records — each byte-identical to
/// what was stored — and nothing else. Returns the prefix length.
fn assert_prefix_recovery(dir: &Path) -> usize {
    let warm = open_store(dir);
    let recovered = warm.run_count();
    assert!(recovered > 0, "crash recovery found no records at all");
    assert!(
        recovered < FILL as usize,
        "the in-flight tail should have been lost"
    );
    for i in 0..FILL {
        let key = sample_key(i);
        match warm.lookup(&key) {
            Some(run) => {
                assert!(
                    (i as usize) < recovered,
                    "record {i} survived beyond the recovered prefix"
                );
                // Warm == cold, byte for byte: re-encoding the
                // recovered run reproduces the original entry exactly.
                assert_eq!(
                    encode_entry(&key, &run),
                    encode_entry(&key, &sample_run(i)),
                    "record {i} was not recovered byte-identically"
                );
            }
            None => assert!(
                (i as usize) >= recovered,
                "record {i} is missing inside the recovered prefix"
            ),
        }
    }
    recovered
}

#[test]
fn a_torn_append_truncates_cleanly_and_quarantines_the_tail() {
    let dir = tempdir("append");
    crash_child(&dir, "fill", "append:20");
    // The 20th append died half-written: 19 whole records remain, the
    // torn one is truncated away and preserved for autopsy.
    let recovered = assert_prefix_recovery(&dir);
    assert_eq!(recovered, 19, "every whole record before the tear survives");
    let torn: Vec<String> = fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    assert!(
        torn.iter()
            .any(|n| n.starts_with("torn-") && n.ends_with(".bad")),
        "torn tail should be preserved in quarantine/, found {torn:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_before_the_seal_rename_loses_only_the_in_flight_record() {
    let dir = tempdir("seal-pre");
    crash_child(&dir, "fill", "seal-pre:2");
    // The active segment was never renamed; every record inside it is
    // whole and must be recovered. Only the append that triggered the
    // seal is lost.
    assert_prefix_recovery(&dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_after_the_seal_rename_recovers_without_an_active_segment() {
    let dir = tempdir("seal-post");
    crash_child(&dir, "fill", "seal-post:1");
    // The crash window leaves only sealed segments on disk — no
    // `.open` file. Reopen must rebuild, restart an active segment,
    // and accept appends again.
    let recovered = assert_prefix_recovery(&dir);
    let warm = open_store(&dir);
    warm.store(&sample_key(FILL), &Arc::new(sample_run(FILL)));
    assert_eq!(
        warm.run_count(),
        recovered + 1,
        "recovered store accepts appends"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_mid_compaction_resolves_duplicates_to_the_same_live_set() {
    let dir = tempdir("compact");
    crash_child(&dir, "churn", "compact:1");
    // The child died after rewriting the victim's live records but
    // before deleting the source segment, so duplicates exist on disk.
    // The rebuild's "later wins" rule must resolve them: every churned
    // key readable exactly once, byte-identical, the stale copies
    // counted as garbage.
    let warm = open_store(&dir);
    assert_eq!(
        warm.run_count(),
        CHURN_KEYS as usize,
        "duplicates must collapse to one live record per key"
    );
    for i in 0..CHURN_KEYS {
        let key = sample_key(i);
        let run = warm.lookup(&key).expect("churned key survives the crash");
        assert_eq!(
            encode_entry(&key, &run),
            encode_entry(&key, &sample_run(i)),
            "key {i} must read back byte-identically"
        );
    }
    let stats = warm.log_stats().expect("durable store has log stats");
    assert!(
        stats.garbage_bytes > 0,
        "the undeleted compaction source should surface as garbage"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn a_pr4_one_file_per_run_store_is_refused_with_a_typed_error() {
    let dir = tempdir("pr4");
    fs::create_dir_all(&dir).expect("pr4 dir");
    // The PR-4 store's marker: `icorpus 1`. The log engine must refuse
    // it outright — a typed error naming both formats — rather than
    // scribbling segments next to foreign files.
    fs::write(dir.join("format"), "icorpus 1\n").expect("pr4 marker");
    match Corpus::open(CorpusOptions::at(&dir)) {
        Err(CorpusError::FormatMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, "icorpus 1");
            assert_eq!(expected, "icseg 1");
        }
        Ok(_) => panic!("a PR-4 store must not open as a log store"),
        Err(other) => panic!("expected FormatMismatch, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}
