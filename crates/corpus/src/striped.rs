//! Striped concurrent access to a shared run cache.
//!
//! When many campaigns run at once against one [`RunCache`] — the
//! `icd` orchestrator's whole point — a single lock (or the raw disk
//! store) becomes the serialization point. [`StripedCache`] wraps any
//! inner cache with `N` independently-locked in-memory stripes, chosen
//! by the key's fingerprint, so concurrent campaigns contend only when
//! they touch keys that land on the same stripe (cf. the shared
//! hash-table designs used for multi-core reachability). Reads that hit
//! a stripe's memo never reach the inner cache; misses fall through
//! *outside* the stripe lock, so slow inner lookups (disk I/O) never
//! block other stripes or even other keys of the same stripe.
//!
//! Correctness note: a stripe memo is a pure pass-through cache of the
//! inner store's contents. Determinism never depends on hitting the
//! memo — a miss just re-asks the inner cache — so the wrapper is
//! transparent to the checker's warm-equals-cold contract.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use instantcheck::{CachedRun, RunCache, RunKey};
use obs::Registry;

use crate::fingerprint::fingerprint_key;

/// Default stripe count: enough that a handful of concurrent campaigns
/// rarely collide, small enough to stay cheap.
pub const DEFAULT_STRIPES: usize = 16;

/// One lock's worth of the memo.
type Stripe = Mutex<HashMap<String, CachedRun>>;

/// A striped in-memory memo in front of a shared [`RunCache`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use corpus::StripedCache;
/// use instantcheck::MemoryRunCache;
///
/// let inner = Arc::new(MemoryRunCache::new());
/// let striped = StripedCache::new(inner, 8, None);
/// assert_eq!(striped.stripes(), 8);
/// ```
#[derive(Debug)]
pub struct StripedCache {
    inner: Arc<dyn RunCache>,
    stripes: Vec<Stripe>,
    registry: Option<Arc<Registry>>,
}

impl StripedCache {
    /// Wraps `inner` behind `stripes` locks (`0` is clamped to `1`).
    /// When `registry` is given, the wrapper counts
    /// `corpus.stripe.memo_hits`, `corpus.stripe.memo_misses`, and
    /// `corpus.stripe.contended` (lock acquisitions that had to wait).
    pub fn new(inner: Arc<dyn RunCache>, stripes: usize, registry: Option<Arc<Registry>>) -> Self {
        let n = stripes.max(1);
        StripedCache {
            inner,
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            registry,
        }
    }

    /// The wrapped cache with the default stripe count.
    pub fn with_default_stripes(inner: Arc<dyn RunCache>, registry: Option<Arc<Registry>>) -> Self {
        StripedCache::new(inner, DEFAULT_STRIPES, registry)
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    fn count(&self, name: &str) {
        if let Some(reg) = &self.registry {
            reg.add(name, 1);
        }
    }

    /// Locks the stripe for `key`, counting contention when the lock
    /// was not immediately available.
    fn lock_stripe(&self, key: &RunKey) -> MutexGuard<'_, HashMap<String, CachedRun>> {
        let idx = (fingerprint_key(key) % self.stripes.len() as u128) as usize;
        let stripe = &self.stripes[idx];
        match stripe.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.count("corpus.stripe.contended");
                stripe.lock().unwrap()
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }
}

impl RunCache for StripedCache {
    fn lookup(&self, key: &RunKey) -> Option<CachedRun> {
        let canonical = key.canonical();
        if let Some(hit) = self.lock_stripe(key).get(&canonical).cloned() {
            self.count("corpus.stripe.memo_hits");
            return Some(hit);
        }
        self.count("corpus.stripe.memo_misses");
        // Fall through to the inner cache with no stripe lock held, so
        // disk I/O never serializes unrelated lookups.
        let fetched = self.inner.lookup(key)?;
        self.lock_stripe(key).insert(canonical, fetched.clone());
        Some(fetched)
    }

    fn store(&self, key: &RunKey, run: &CachedRun) {
        // Write-through: the inner store stays the source of truth, the
        // memo serves it back without I/O.
        self.inner.store(key, run);
        self.lock_stripe(key).insert(key.canonical(), run.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{MemoryRunCache, RunHashes, Scheme};
    use tsim::SwitchPolicy;

    fn key(seed: u64) -> RunKey {
        RunKey {
            workload: "w".into(),
            scheme: Scheme::HwInc,
            seed,
            lib_seed: 0xfeed,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn run(digest: u64) -> CachedRun {
        CachedRun {
            hashes: RunHashes {
                checkpoints: Vec::new(),
                output_digest: digest,
                extra_instr: 0,
                stores: 0,
                hash_updates: 0,
                cache: None,
            },
            steps: 1,
            native_instr: 1,
            zero_fill_instr: 0,
            alloc_log: None,
            sim_trace: None,
        }
    }

    #[test]
    fn memo_serves_repeat_lookups_without_the_inner_cache() {
        let inner = Arc::new(MemoryRunCache::new());
        let reg = Arc::new(Registry::new());
        let striped = StripedCache::new(inner.clone(), 4, Some(reg.clone()));
        let k = key(7);
        striped.store(&k, &run(42));
        assert_eq!(inner.len(), 1, "write-through reaches the inner store");
        for _ in 0..3 {
            assert_eq!(striped.lookup(&k).unwrap().hashes.output_digest, 42);
        }
        assert_eq!(inner.hits() + inner.misses(), 0, "memo absorbed every read");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("corpus.stripe.memo_hits"), Some(&3));
    }

    #[test]
    fn misses_fall_through_and_populate_the_memo() {
        let inner = Arc::new(MemoryRunCache::new());
        let k = key(1);
        inner.store(&k, &run(9));
        let reg = Arc::new(Registry::new());
        let striped = StripedCache::new(inner.clone(), 4, Some(reg.clone()));
        assert_eq!(striped.lookup(&k).unwrap().hashes.output_digest, 9);
        assert_eq!(inner.hits(), 1, "first read fell through");
        assert_eq!(striped.lookup(&k).unwrap().hashes.output_digest, 9);
        assert_eq!(inner.hits(), 1, "second read came from the memo");
        assert!(striped.lookup(&key(2)).is_none(), "absent keys stay absent");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("corpus.stripe.memo_misses"), Some(&2));
    }

    #[test]
    fn zero_stripes_is_clamped() {
        let striped = StripedCache::new(Arc::new(MemoryRunCache::new()), 0, None);
        assert_eq!(striped.stripes(), 1);
        let k = key(3);
        striped.store(&k, &run(1));
        assert!(striped.lookup(&k).is_some());
    }

    #[test]
    fn concurrent_campaign_traffic_keeps_every_value() {
        let inner = Arc::new(MemoryRunCache::new());
        let striped = Arc::new(StripedCache::with_default_stripes(inner, None));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let striped = Arc::clone(&striped);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let k = key(t * 1000 + i);
                        striped.store(&k, &run(t * 1000 + i));
                        assert_eq!(
                            striped.lookup(&k).unwrap().hashes.output_digest,
                            t * 1000 + i
                        );
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..50u64 {
                let k = key(t * 1000 + i);
                assert_eq!(
                    striped.lookup(&k).unwrap().hashes.output_digest,
                    t * 1000 + i
                );
            }
        }
    }
}
