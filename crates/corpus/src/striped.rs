//! Striped concurrent access to a shared run cache.
//!
//! When many campaigns run at once against one [`RunCache`] — the
//! `icd` orchestrator's whole point — a single lock (or the raw disk
//! store) becomes the serialization point. [`StripedCache`] wraps any
//! inner cache with `N` independently-locked in-memory stripes, chosen
//! by the key's fingerprint, so concurrent campaigns contend only when
//! they touch keys that land on the same stripe (cf. the shared
//! hash-table designs used for multi-core reachability). Reads that hit
//! a stripe's memo never reach the inner cache; misses fall through
//! *outside* the stripe lock, so slow inner lookups (disk I/O) never
//! block other stripes or even other keys of the same stripe.
//!
//! Correctness note: a stripe memo is a pure pass-through cache of the
//! inner store's contents. Determinism never depends on hitting the
//! memo — a miss just re-asks the inner cache — so the wrapper is
//! transparent to the checker's warm-equals-cold contract.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use instantcheck::{CachedRun, RunCache, RunKey};
use obs::{Registry, Telemetry};

use crate::fingerprint::fingerprint_key;

/// Default stripe count: enough that a handful of concurrent campaigns
/// rarely collide, small enough to stay cheap.
pub const DEFAULT_STRIPES: usize = 16;

/// Telemetry histogram fed with per-acquisition stripe lock waits.
pub const STRIPE_WAIT_HISTOGRAM: &str = "icd.stripe.wait";

/// One lock's worth of the memo.
type Stripe = Mutex<HashMap<String, CachedRun>>;

/// Wall-clock contention tally for one stripe. Strictly a telemetry
/// artifact: the values depend on thread interleaving and never feed
/// back into lookups or the deterministic metrics registry.
#[derive(Debug, Default)]
struct StripeWait {
    contended: AtomicU64,
    wait_ns: AtomicU64,
}

/// Read-only view of one stripe's contention tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeStats {
    /// Lock acquisitions that found the stripe held.
    pub contended: u64,
    /// Total wall-clock nanoseconds spent acquiring this stripe's lock
    /// (every acquisition, so uncontended traffic contributes a few
    /// tens of nanoseconds each and contention dominates the total).
    pub wait_ns: u64,
}

/// A striped in-memory memo in front of a shared [`RunCache`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use corpus::StripedCache;
/// use instantcheck::MemoryRunCache;
///
/// let inner = Arc::new(MemoryRunCache::new());
/// let striped = StripedCache::new(inner, 8, None);
/// assert_eq!(striped.stripes(), 8);
/// ```
#[derive(Debug)]
pub struct StripedCache {
    inner: Arc<dyn RunCache>,
    stripes: Vec<Stripe>,
    waits: Vec<StripeWait>,
    registry: Option<Arc<Registry>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl StripedCache {
    /// Wraps `inner` behind `stripes` locks (`0` is clamped to `1`).
    /// When `registry` is given, the wrapper counts
    /// `corpus.stripe.memo_hits`, `corpus.stripe.memo_misses`, and
    /// `corpus.stripe.contended` (lock acquisitions that had to wait).
    pub fn new(inner: Arc<dyn RunCache>, stripes: usize, registry: Option<Arc<Registry>>) -> Self {
        let n = stripes.max(1);
        StripedCache {
            inner,
            stripes: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            waits: (0..n).map(|_| StripeWait::default()).collect(),
            registry,
            telemetry: None,
        }
    }

    /// Attaches a wall-clock telemetry plane: each stripe lock
    /// acquisition records its wait into the [`STRIPE_WAIT_HISTOGRAM`]
    /// and the per-stripe tallies. The histogram is pre-registered so
    /// `/metrics` exports it even before the first acquisition.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        telemetry.histogram(STRIPE_WAIT_HISTOGRAM);
        self.telemetry = Some(telemetry);
        self
    }

    /// The wrapped cache with the default stripe count.
    pub fn with_default_stripes(inner: Arc<dyn RunCache>, registry: Option<Arc<Registry>>) -> Self {
        StripedCache::new(inner, DEFAULT_STRIPES, registry)
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Per-stripe wall-clock contention tallies, indexed by stripe.
    /// Telemetry only — the values vary run to run and must never be
    /// folded into deterministic artifacts.
    pub fn stripe_stats(&self) -> Vec<StripeStats> {
        self.waits
            .iter()
            .map(|w| StripeStats {
                contended: w.contended.load(Ordering::Relaxed),
                wait_ns: w.wait_ns.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn count(&self, name: &str) {
        if let Some(reg) = &self.registry {
            reg.add(name, 1);
        }
    }

    /// Locks the stripe for `key`, counting contention when the lock
    /// was not immediately available and measuring the wall-clock
    /// acquisition wait into the telemetry side-channel. Every
    /// acquisition is measured (the uncontended fast path takes tens of
    /// nanoseconds and lands in the histogram's low buckets), so the
    /// wait histogram always has samples under cache traffic and
    /// contention shows up as a fat tail rather than a separate series.
    fn lock_stripe(&self, key: &RunKey) -> MutexGuard<'_, HashMap<String, CachedRun>> {
        let idx = (fingerprint_key(key) % self.stripes.len() as u128) as usize;
        let stripe = &self.stripes[idx];
        let start = Instant::now();
        let (guard, contended) = match stripe.try_lock() {
            Ok(guard) => (guard, false),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.count("corpus.stripe.contended");
                (stripe.lock().unwrap(), true)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => (p.into_inner(), false),
        };
        let wait = start.elapsed();
        if contended {
            self.waits[idx].contended.fetch_add(1, Ordering::Relaxed);
        }
        self.waits[idx]
            .wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        if let Some(t) = &self.telemetry {
            t.record_wait(STRIPE_WAIT_HISTOGRAM, wait);
        }
        guard
    }

    /// Test hook: holds stripe `idx`'s lock directly so contention can
    /// be forced deterministically.
    #[cfg(test)]
    fn lock_raw(&self, idx: usize) -> MutexGuard<'_, HashMap<String, CachedRun>> {
        self.stripes[idx].lock().unwrap()
    }
}

impl RunCache for StripedCache {
    fn lookup(&self, key: &RunKey) -> Option<CachedRun> {
        let canonical = key.canonical();
        if let Some(hit) = self.lock_stripe(key).get(&canonical).cloned() {
            self.count("corpus.stripe.memo_hits");
            return Some(hit);
        }
        self.count("corpus.stripe.memo_misses");
        // Fall through to the inner cache with no stripe lock held, so
        // disk I/O never serializes unrelated lookups.
        let fetched = self.inner.lookup(key)?;
        self.lock_stripe(key).insert(canonical, fetched.clone());
        Some(fetched)
    }

    fn store(&self, key: &RunKey, run: &CachedRun) {
        // Write-through: the inner store stays the source of truth, the
        // memo serves it back without I/O.
        self.inner.store(key, run);
        self.lock_stripe(key).insert(key.canonical(), run.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instantcheck::{MemoryRunCache, RunHashes, Scheme};
    use tsim::SwitchPolicy;

    fn key(seed: u64) -> RunKey {
        RunKey {
            workload: "w".into(),
            scheme: Scheme::HwInc,
            seed,
            lib_seed: 0xfeed,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn run(digest: u64) -> CachedRun {
        CachedRun {
            hashes: RunHashes {
                checkpoints: Vec::new(),
                output_digest: digest,
                extra_instr: 0,
                stores: 0,
                hash_updates: 0,
                cache: None,
            },
            steps: 1,
            native_instr: 1,
            zero_fill_instr: 0,
            alloc_log: None,
            sim_trace: None,
        }
    }

    #[test]
    fn memo_serves_repeat_lookups_without_the_inner_cache() {
        let inner = Arc::new(MemoryRunCache::new());
        let reg = Arc::new(Registry::new());
        let striped = StripedCache::new(inner.clone(), 4, Some(reg.clone()));
        let k = key(7);
        striped.store(&k, &run(42));
        assert_eq!(inner.len(), 1, "write-through reaches the inner store");
        for _ in 0..3 {
            assert_eq!(striped.lookup(&k).unwrap().hashes.output_digest, 42);
        }
        assert_eq!(inner.hits() + inner.misses(), 0, "memo absorbed every read");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("corpus.stripe.memo_hits"), Some(&3));
    }

    #[test]
    fn misses_fall_through_and_populate_the_memo() {
        let inner = Arc::new(MemoryRunCache::new());
        let k = key(1);
        inner.store(&k, &run(9));
        let reg = Arc::new(Registry::new());
        let striped = StripedCache::new(inner.clone(), 4, Some(reg.clone()));
        assert_eq!(striped.lookup(&k).unwrap().hashes.output_digest, 9);
        assert_eq!(inner.hits(), 1, "first read fell through");
        assert_eq!(striped.lookup(&k).unwrap().hashes.output_digest, 9);
        assert_eq!(inner.hits(), 1, "second read came from the memo");
        assert!(striped.lookup(&key(2)).is_none(), "absent keys stay absent");
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("corpus.stripe.memo_misses"), Some(&2));
    }

    #[test]
    fn zero_stripes_is_clamped() {
        let striped = StripedCache::new(Arc::new(MemoryRunCache::new()), 0, None);
        assert_eq!(striped.stripes(), 1);
        let k = key(3);
        striped.store(&k, &run(1));
        assert!(striped.lookup(&k).is_some());
    }

    #[test]
    fn contended_acquisitions_record_wall_clock_waits() {
        let inner = Arc::new(MemoryRunCache::new());
        let reg = Arc::new(Registry::new());
        let telemetry = Arc::new(Telemetry::new());
        // One stripe: every key maps to it, so holding the raw lock
        // forces the store below onto the contended path.
        let striped = Arc::new(
            StripedCache::new(inner, 1, Some(reg.clone())).with_telemetry(telemetry.clone()),
        );
        let guard = striped.lock_raw(0);
        let waiter = {
            let striped = Arc::clone(&striped);
            std::thread::spawn(move || striped.store(&key(11), &run(11)))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(guard);
        waiter.join().unwrap();

        let stats = striped.stripe_stats();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].contended >= 1, "the blocked store was counted");
        assert!(stats[0].wait_ns > 0, "the wait was measured");
        let snap = telemetry.snapshot();
        let h = &snap.histograms[STRIPE_WAIT_HISTOGRAM];
        assert!(h.count >= 1, "the wait landed in the telemetry histogram");
        assert!(h.p99() > 0);
        // The deterministic registry saw only the event count, never
        // the wall-clock duration.
        let det = reg.snapshot();
        assert_eq!(det.counters.get("corpus.stripe.contended"), Some(&1));
        assert!(!det.histograms.contains_key(STRIPE_WAIT_HISTOGRAM));
    }

    #[test]
    fn concurrent_campaign_traffic_keeps_every_value() {
        let inner = Arc::new(MemoryRunCache::new());
        let striped = Arc::new(StripedCache::with_default_stripes(inner, None));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let striped = Arc::clone(&striped);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let k = key(t * 1000 + i);
                        striped.store(&k, &run(t * 1000 + i));
                        assert_eq!(
                            striped.lookup(&k).unwrap().hashes.output_digest,
                            t * 1000 + i
                        );
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..50u64 {
                let k = key(t * 1000 + i);
                assert_eq!(
                    striped.lookup(&k).unwrap().hashes.output_digest,
                    t * 1000 + i
                );
            }
        }
    }
}
