//! Background-free inline compaction and size-bounded eviction.
//!
//! Compaction runs *inline* on the write path — there is no background
//! thread to coordinate with, crash during, or leak. After a store the
//! engine asks: does some sealed segment hold more garbage (superseded
//! or quarantined records) than live data, and enough of it to be
//! worth a rewrite? If so, the live records of the *most-garbage*
//! segment are re-appended to the active segment and the source file
//! is deleted. The ordering is the crash-safety argument:
//!
//! 1. copy live records forward (appends — crash here leaves
//!    duplicates, which the "later wins" rebuild rule resolves);
//! 2. delete the source segment (crash before this point loses
//!    nothing; after it the log is simply smaller).
//!
//! Eviction bounds the store's total size: when the log exceeds
//! `max_bytes`, whole segments are dropped oldest-first (segment id is
//! creation order, so age-keyed). Evicted records are plain cache
//! misses later — the corpus is a cache, and eviction is the one case
//! where "losing" records is by design.

use std::io;
use std::os::unix::fs::FileExt;

use crate::index::{CrashPoints, LogInner};
use crate::segment::encode_record;

/// What one inline compaction did.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompactionOutcome {
    /// Live records rewritten into the active segment.
    pub rewritten: u64,
    /// Bytes reclaimed by deleting the source segment.
    pub reclaimed_bytes: u64,
}

/// Picks the compaction victim: the sealed segment with the most
/// garbage, provided garbage outweighs live data and amounts to at
/// least a quarter segment — below that a rewrite costs more I/O than
/// it reclaims.
fn victim(inner: &LogInner, segment_bytes: u64) -> Option<u64> {
    inner
        .segments
        .iter()
        .filter(|(_, info)| {
            info.sealed
                && info.garbage_bytes > info.live_bytes
                && info.garbage_bytes >= segment_bytes / 4
        })
        .max_by_key(|(_, info)| info.garbage_bytes)
        .map(|(id, _)| *id)
}

/// Compacts the most-garbage sealed segment, if any qualifies.
/// Returns `None` when nothing was worth compacting.
pub(crate) fn maybe_compact(
    inner: &mut LogInner,
    segment_bytes: u64,
    crash: &CrashPoints,
) -> io::Result<Option<CompactionOutcome>> {
    let Some(id) = victim(inner, segment_bytes) else {
        return Ok(None);
    };
    let reclaimed_bytes = inner.segments[&id].len;
    // Collect the victim's live records in file order (locality), then
    // re-append each — the index update inside `append` retires the old
    // location as garbage, so a crash mid-loop leaves a log the rebuild
    // rules resolve to exactly the same live set.
    let mut live: Vec<(u128, crate::index::RecordLoc)> = inner
        .map
        .iter()
        .filter(|(_, loc)| loc.seg == id)
        .map(|(fp, loc)| (*fp, *loc))
        .collect();
    live.sort_unstable_by_key(|(_, loc)| loc.payload_offset);
    let file = std::sync::Arc::clone(&inner.segments[&id].file);
    let rewritten = live.len() as u64;
    for (fp, loc) in live {
        let mut payload = vec![0u8; loc.payload_len as usize];
        file.read_exact_at(&mut payload, loc.payload_offset)?;
        inner.append(fp, &encode_record(fp, &payload), segment_bytes, crash)?;
    }
    if crash.fires("compact") {
        std::process::abort();
    }
    inner.remove_segment(id)?;
    Ok(Some(CompactionOutcome {
        rewritten,
        reclaimed_bytes,
    }))
}

/// Evicts whole segments oldest-first until the log fits `max_bytes`.
/// The active segment is never evicted. Returns the live records
/// dropped.
pub(crate) fn enforce_size_bound(inner: &mut LogInner, max_bytes: u64) -> io::Result<u64> {
    let mut dropped = 0;
    while inner.total_bytes() > max_bytes {
        let Some(oldest) = inner
            .segments
            .iter()
            .find(|(_, info)| info.sealed)
            .map(|(id, _)| *id)
        else {
            break;
        };
        dropped += inner.remove_segment(oldest)?;
    }
    Ok(dropped)
}
