//! The unified corpus error surface.
//!
//! Every fallible corpus operation reports a [`CorpusError`]. The enum
//! is `#[non_exhaustive]` so later engine work (new corruption classes,
//! new storage phases) can add variants without breaking callers, and
//! each variant names the phase that failed — open, append, index,
//! quarantine — so a caller can distinguish "the store is unusable"
//! from "one record was bad".

use std::fmt;
use std::io;
use std::path::PathBuf;

use crate::entry::Corruption;

/// Any error a corpus operation can report.
///
/// Replaces the previous per-module error types (`io::Error` with
/// stringly kinds from `Store::open`, ad-hoc strings elsewhere) with
/// one typed surface. [`From<io::Error>`] is kept so existing `?`
/// call sites migrate mechanically.
#[non_exhaustive]
#[derive(Debug)]
pub enum CorpusError {
    /// The store could not be opened: directories or the format marker
    /// could not be created or read.
    Open {
        /// The corpus root that failed to open.
        dir: PathBuf,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// The directory holds a corpus of a different on-disk format.
    /// An incompatible store — including a PR-4 `icorpus` one-file-
    /// per-run store — is refused outright, never silently misread or
    /// migrated in place.
    FormatMismatch {
        /// The corpus root with the foreign marker.
        dir: PathBuf,
        /// The marker found on disk (trimmed).
        found: String,
        /// The marker this build reads and writes.
        expected: String,
    },
    /// Appending a record to the active segment failed.
    Append(io::Error),
    /// Scanning segments to (re)build the in-memory index failed.
    Index(io::Error),
    /// A corrupt record could not be moved into quarantine.
    Quarantine {
        /// The corruption class of the record being quarantined.
        class: Corruption,
        /// The underlying I/O failure.
        source: io::Error,
    },
    /// Any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Open { dir, source } => {
                write!(f, "cannot open corpus at {}: {source}", dir.display())
            }
            CorpusError::FormatMismatch {
                dir,
                found,
                expected,
            } => write!(
                f,
                "corpus at {} has format {found:?}, this build reads {expected:?}",
                dir.display()
            ),
            CorpusError::Append(e) => write!(f, "corpus append failed: {e}"),
            CorpusError::Index(e) => write!(f, "corpus index build failed: {e}"),
            CorpusError::Quarantine { class, source } => {
                write!(f, "cannot quarantine {} record: {source}", class.label())
            }
            CorpusError::Io(e) => write!(f, "corpus i/o error: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Open { source, .. } | CorpusError::Quarantine { source, .. } => {
                Some(source)
            }
            CorpusError::Append(e) | CorpusError::Index(e) | CorpusError::Io(e) => Some(e),
            CorpusError::FormatMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> CorpusError {
        CorpusError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_phase() {
        let e = CorpusError::Open {
            dir: PathBuf::from("/nowhere"),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(e.to_string().contains("cannot open corpus at /nowhere"));
        let e = CorpusError::FormatMismatch {
            dir: PathBuf::from("/x"),
            found: "icorpus 1".into(),
            expected: "icseg 1".into(),
        };
        assert!(e.to_string().contains("icorpus 1"));
        assert!(e.to_string().contains("icseg 1"));
    }

    #[test]
    fn io_errors_convert_mechanically() {
        fn fallible() -> Result<(), CorpusError> {
            Err(io::Error::other("boom"))?;
            Ok(())
        }
        assert!(matches!(fallible(), Err(CorpusError::Io(_))));
    }
}
