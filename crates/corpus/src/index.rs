//! The in-memory fingerprint index over the segment log, and the
//! mutable log state (`LogInner`) every write path goes through.
//!
//! The index is rebuilt by scanning the segments on first use — the
//! log itself is the only durable structure; there is no on-disk index
//! to corrupt. The rebuild applies two rules:
//!
//! * **Later wins.** Records are scanned in `(segment id, offset)`
//!   order and a later record for a fingerprint supersedes an earlier
//!   one, whose bytes become garbage in their segment. This is what
//!   makes compaction crash-safe: a crash after copying live records
//!   but before deleting the source segment leaves duplicates that the
//!   next rebuild resolves identically.
//! * **Torn tails truncate.** A crash mid-append can only damage the
//!   tail of the active segment; the structural scan finds the first
//!   unparseable byte, the torn bytes are preserved for quarantine,
//!   and the file is truncated back to its last whole record. Records
//!   before the tear are untouched.

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::segment::{
    open_name, parse_segment_name, scan_segment, sealed_name, ScannedRecord, SEGMENT_MAGIC,
};

/// Environment variable arming a seeded crash point, for crash-recovery
/// tests: `ICSEG_CRASH=<point>[:<n>]` aborts the process at the n-th
/// (default first) hit of the named point. Points: `append` (a torn
/// half-record write), `seal-pre` (before the seal rename), `seal-post`
/// (after the rename, before the next active segment exists), and
/// `compact` (after live records are rewritten, before the source
/// segment is deleted).
pub const CRASH_ENV: &str = "ICSEG_CRASH";

/// Seeded fault points, parsed once from [`CRASH_ENV`]. Inert (two
/// relaxed atomic loads) unless the variable is set.
#[derive(Debug)]
pub(crate) struct CrashPoints {
    point: Option<(String, u64)>,
    hits: AtomicU64,
}

impl CrashPoints {
    pub(crate) fn from_env() -> CrashPoints {
        let point = std::env::var(CRASH_ENV)
            .ok()
            .map(|v| match v.split_once(':') {
                Some((name, n)) => (name.to_owned(), n.parse().unwrap_or(1).max(1)),
                None => (v, 1),
            });
        CrashPoints {
            point,
            hits: AtomicU64::new(0),
        }
    }

    /// Whether the named point fires now (its configured hit count was
    /// just reached). The caller performs the seeded damage and aborts.
    pub(crate) fn fires(&self, name: &str) -> bool {
        match &self.point {
            Some((p, n)) if p == name => self.hits.fetch_add(1, Ordering::Relaxed) + 1 == *n,
            _ => false,
        }
    }
}

/// Where a live record lives.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecordLoc {
    /// Segment id.
    pub seg: u64,
    /// Payload byte offset within the segment.
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Whole-record length (frame + payload), for garbage accounting.
    pub record_len: u64,
}

/// One segment's open handle and byte accounting.
#[derive(Debug)]
pub(crate) struct SegmentInfo {
    /// Shared read handle; also the write handle of the active segment.
    pub file: Arc<File>,
    /// Sealed segments are immutable; exactly one segment is not.
    pub sealed: bool,
    /// Current byte length.
    pub len: u64,
    /// Bytes of live (indexed) records.
    pub live_bytes: u64,
    /// Bytes of superseded or quarantined records.
    pub garbage_bytes: u64,
    /// Count of live records.
    pub live_records: u64,
}

/// A torn tail preserved from a scan, for quarantine by the caller.
#[derive(Debug)]
pub(crate) struct TornTail {
    /// The segment the tail was cut from.
    pub seg: u64,
    /// Offset the tear started at.
    pub offset: u64,
    /// The unparseable bytes.
    pub bytes: Vec<u8>,
}

/// What a rebuild found, beyond the index itself.
#[derive(Debug, Default)]
pub(crate) struct BuildReport {
    /// Torn tails cut from segments (normally at most one, on the
    /// active segment, after a crash).
    pub torn: Vec<TornTail>,
    /// Live records indexed.
    pub records: u64,
}

/// The mutable log state: fingerprint index, segment table, and the
/// active segment every append goes to. All mutation happens behind
/// the store's mutex; reads clone the `Arc<File>` handle and leave.
#[derive(Debug)]
pub(crate) struct LogInner {
    segments_dir: PathBuf,
    /// fingerprint → live record location.
    pub map: HashMap<u128, RecordLoc>,
    /// Segment table in id (= age) order.
    pub segments: BTreeMap<u64, SegmentInfo>,
    /// Id of the active segment.
    pub active: u64,
    /// Segments sealed by this instance.
    pub sealed_count: u64,
}

impl LogInner {
    /// Scans `segments_dir` and rebuilds the index. Creates the first
    /// active segment if the log is empty; truncates torn tails and
    /// reports them for quarantine.
    pub(crate) fn open(segments_dir: &Path) -> io::Result<(LogInner, BuildReport)> {
        let mut found: Vec<(u64, bool)> = Vec::new();
        for entry in fs::read_dir(segments_dir)? {
            let entry = entry?;
            if let Some(parsed) = entry.file_name().to_str().and_then(parse_segment_name) {
                found.push(parsed);
            }
        }
        found.sort_unstable();

        let mut inner = LogInner {
            segments_dir: segments_dir.to_path_buf(),
            map: HashMap::new(),
            segments: BTreeMap::new(),
            active: 0,
            sealed_count: 0,
        };
        let mut report = BuildReport::default();

        for &(id, sealed) in &found {
            let name = if sealed {
                sealed_name(id)
            } else {
                open_name(id)
            };
            let path = segments_dir.join(name);
            let bytes = fs::read(&path)?;
            let scan = scan_segment(&bytes);
            if scan.torn {
                report.torn.push(TornTail {
                    seg: id,
                    offset: scan.valid_len,
                    bytes: bytes[scan.valid_len as usize..].to_vec(),
                });
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(scan.valid_len)?;
            }
            // A stale `.open` segment older than the newest one (a
            // crash window between seal and next-active creation never
            // leaves this, but be safe) is sealed on sight.
            let is_last = id == found.last().expect("nonempty").0;
            let (path, sealed) = if !sealed && !is_last {
                let sealed_path = segments_dir.join(sealed_name(id));
                fs::rename(&path, &sealed_path)?;
                (sealed_path, true)
            } else {
                (path, sealed)
            };
            let file = if sealed {
                File::open(&path)?
            } else {
                OpenOptions::new().read(true).write(true).open(&path)?
            };
            let mut info = SegmentInfo {
                file: Arc::new(file),
                sealed,
                len: scan.valid_len,
                live_bytes: 0,
                garbage_bytes: 0,
                live_records: 0,
            };
            for rec in &scan.records {
                index_record(&mut inner.map, &mut inner.segments, &mut info, id, rec);
            }
            inner.segments.insert(id, info);
            if !sealed {
                inner.active = id;
            }
        }
        report.records = inner.map.len() as u64;

        if inner.active == 0 {
            let id = inner.segments.keys().next_back().copied().unwrap_or(0) + 1;
            inner.create_active(id)?;
        }
        Ok((inner, report))
    }

    fn create_active(&mut self, id: u64) -> io::Result<()> {
        let path = self.segments_dir.join(open_name(id));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        self.segments.insert(
            id,
            SegmentInfo {
                file: Arc::new(file),
                sealed: false,
                len: 0,
                live_bytes: 0,
                garbage_bytes: 0,
                live_records: 0,
            },
        );
        self.active = id;
        Ok(())
    }

    /// Seals the active segment (atomic rename `.open` → `.icseg`) and
    /// starts the next one. `crash` arms the seeded `seal-pre` /
    /// `seal-post` fault points.
    pub(crate) fn seal_active(&mut self, crash: &CrashPoints) -> io::Result<()> {
        let id = self.active;
        if crash.fires("seal-pre") {
            std::process::abort();
        }
        let from = self.segments_dir.join(open_name(id));
        let to = self.segments_dir.join(sealed_name(id));
        fs::rename(&from, &to)?;
        if let Some(info) = self.segments.get_mut(&id) {
            info.sealed = true;
            // Reopen read-only so the sealed handle can never write.
            info.file = Arc::new(File::open(&to)?);
        }
        self.sealed_count += 1;
        if crash.fires("seal-post") {
            std::process::abort();
        }
        self.create_active(id + 1)
    }

    /// Appends one framed record to the active segment, sealing first
    /// when the append would overflow `segment_bytes`. Updates the
    /// index; a superseded older record becomes garbage in its segment.
    /// `crash` arms the seeded `append` fault point (a torn
    /// half-record write followed by abort).
    pub(crate) fn append(
        &mut self,
        fp: u128,
        record: &[u8],
        segment_bytes: u64,
        crash: &CrashPoints,
    ) -> io::Result<()> {
        let active_len = self.segments[&self.active].len;
        if active_len > 0 && active_len + record.len() as u64 > segment_bytes {
            self.seal_active(crash)?;
        }
        let info = self.segments.get_mut(&self.active).expect("active exists");
        if crash.fires("append") {
            let half = record.len() / 2;
            let _ = info.file.write_all_at(&record[..half], info.len);
            let _ = info.file.sync_data();
            std::process::abort();
        }
        info.file.write_all_at(record, info.len)?;
        let scan = scan_segment(record);
        let rec = scan.records.first().expect("caller frames the record");
        let rec = ScannedRecord {
            record_offset: info.len + rec.record_offset,
            payload_offset: info.len + rec.payload_offset,
            ..*rec
        };
        debug_assert_eq!(rec.fp, fp);
        info.len += record.len() as u64;
        let id = self.active;
        let mut info = self.segments.remove(&id).expect("active exists");
        index_record(&mut self.map, &mut self.segments, &mut info, id, &rec);
        self.segments.insert(id, info);
        Ok(())
    }

    /// Looks a fingerprint up, returning a cloned file handle plus the
    /// record location so the read can happen outside the store lock.
    pub(crate) fn locate(&self, fp: u128) -> Option<(Arc<File>, RecordLoc)> {
        let loc = self.map.get(&fp)?;
        let info = self.segments.get(&loc.seg)?;
        Some((Arc::clone(&info.file), *loc))
    }

    /// Drops a fingerprint from the index (quarantined or untrusted
    /// record); its bytes become garbage in their segment.
    pub(crate) fn mark_dead(&mut self, fp: u128) {
        if let Some(loc) = self.map.remove(&fp) {
            if let Some(info) = self.segments.get_mut(&loc.seg) {
                info.live_bytes -= loc.record_len;
                info.live_records -= 1;
                info.garbage_bytes += loc.record_len;
            }
        }
    }

    /// Live record count.
    pub(crate) fn live_records(&self) -> usize {
        self.map.len()
    }

    /// Total bytes across all segments.
    pub(crate) fn total_bytes(&self) -> u64 {
        self.segments.values().map(|s| s.len).sum()
    }

    /// Deletes a segment outright (eviction, or compaction source
    /// cleanup). Live records still indexed in it are dropped.
    pub(crate) fn remove_segment(&mut self, id: u64) -> io::Result<u64> {
        let Some(info) = self.segments.remove(&id) else {
            return Ok(0);
        };
        let name = if info.sealed {
            sealed_name(id)
        } else {
            open_name(id)
        };
        fs::remove_file(self.segments_dir.join(name))?;
        let dropped = info.live_records;
        self.map.retain(|_, loc| loc.seg != id);
        Ok(dropped)
    }
}

/// Indexes one scanned record of segment `id`, superseding any earlier
/// record with the same fingerprint ("later wins").
fn index_record(
    map: &mut HashMap<u128, RecordLoc>,
    segments: &mut BTreeMap<u64, SegmentInfo>,
    info: &mut SegmentInfo,
    id: u64,
    rec: &ScannedRecord,
) {
    let loc = RecordLoc {
        seg: id,
        payload_offset: rec.payload_offset,
        payload_len: rec.payload_len,
        record_len: rec.record_len,
    };
    if let Some(old) = map.insert(rec.fp, loc) {
        let old_info = if old.seg == id {
            &mut *info
        } else {
            segments.get_mut(&old.seg).expect("superseded segment")
        };
        old_info.live_bytes -= old.record_len;
        old_info.live_records -= 1;
        old_info.garbage_bytes += old.record_len;
    }
    info.live_bytes += rec.record_len;
    info.live_records += 1;
}

/// `format` marker contents of an `icseg` store.
pub(crate) fn format_marker() -> String {
    format!("{SEGMENT_MAGIC} {}\n", crate::segment::SEGMENT_VERSION)
}
