//! The versioned on-disk entry format.
//!
//! One entry file stores one completed run — the
//! [`CachedRun`](instantcheck::CachedRun) plus the canonical tokens of
//! the [`RunKey`](instantcheck::RunKey) it was recorded under — in a
//! line-oriented text format with a self-describing header:
//!
//! ```text
//! icorpus 1                  magic + format version
//! fp <32 hex>                fingerprint the entry is addressed by
//! len <decimal>              body length in bytes (truncation check)
//! sum <16 hex>               FNV-1a checksum of the body
//! key <label>=<value>        one line per key token
//! run steps=… native=… zerofill=…
//! hashes output=… extra=… stores=… hashup=…
//! l1 hits=… misses=… …       (only when the cache model ran)
//! cp <kind> <16 hex>         one line per checkpoint
//! alloclog <count>           (only for the address-logging run)
//! a <tid> <seq> <base>       one line per logged allocation
//! trace <count>              (only when recorded under a sink)
//! {…}                        one JSONL event per line
//! ```
//!
//! Decoding never trusts a damaged file: the magic, version, length,
//! and checksum are verified before any field is parsed, and every
//! parse error is classified as a [`Corruption`] so the store can
//! quarantine the file and recompute the run.

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use adhash::HashSum;
use instantcheck::{CachedRun, CheckpointRecord, RunHashes, RunKey};
use obs::json;
use tsim::{AllocLog, BarrierId, CheckpointKind};

use crate::fingerprint::{fingerprint_key, fnv64};

/// Version of the on-disk entry format. Entries written by any other
/// version are quarantined, never reinterpreted.
pub const FORMAT_VERSION: u32 = 1;

/// The file magic (shared by entry files and the store's format
/// marker).
pub const MAGIC: &str = "icorpus";

/// Why a stored entry could not be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// The file does not start with the `icorpus` magic.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    VersionMismatch {
        /// The version the file declared.
        found: u32,
    },
    /// The body is shorter or longer than the declared length.
    Truncated {
        /// Bytes the header declared.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The body checksum does not match the header.
    BadChecksum,
    /// The header or body failed to parse.
    Malformed(String),
}

impl Corruption {
    /// Stable kebab-case label, used as a quarantine-counter suffix.
    pub fn label(&self) -> &'static str {
        match self {
            Corruption::BadMagic => "bad-magic",
            Corruption::VersionMismatch { .. } => "version-mismatch",
            Corruption::Truncated { .. } => "truncated",
            Corruption::BadChecksum => "bad-checksum",
            Corruption::Malformed(_) => "malformed",
        }
    }
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::BadMagic => write!(f, "bad magic"),
            Corruption::VersionMismatch { found } => {
                write!(f, "format version {found} (expected {FORMAT_VERSION})")
            }
            Corruption::Truncated { expected, found } => {
                write!(f, "body is {found} bytes, header declared {expected}")
            }
            Corruption::BadChecksum => write!(f, "body checksum mismatch"),
            Corruption::Malformed(detail) => write!(f, "malformed entry: {detail}"),
        }
    }
}

fn malformed(detail: impl Into<String>) -> Corruption {
    Corruption::Malformed(detail.into())
}

/// Escapes a value for a space/line-delimited field: `%`, space, and
/// control characters become `%xx`.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            '\t' => out.push_str("%09"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`].
fn unesc(s: &str) -> Result<String, Corruption> {
    if !s.contains('%') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        if hex.len() != 2 {
            return Err(malformed(format!("truncated escape %{hex}")));
        }
        let code =
            u8::from_str_radix(&hex, 16).map_err(|_| malformed(format!("bad escape %{hex}")))?;
        out.push(char::from(code));
    }
    Ok(out)
}

/// Interns a string, yielding the `&'static str` that
/// [`CheckpointKind::Manual`] requires. Labels are deduplicated, so
/// decoding the same trace repeatedly does not grow memory.
fn intern(label: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap();
    if let Some(&existing) = set.get(label) {
        return existing;
    }
    let leaked: &'static str = Box::leak(label.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// The stable token of a checkpoint kind: `b:<index>` for barriers,
/// `m:<label>` for manual checkpoints, `e` for end-of-program.
pub fn kind_token(kind: CheckpointKind) -> String {
    match kind {
        CheckpointKind::Barrier(id) => format!("b:{}", id.index()),
        CheckpointKind::Manual(label) => format!("m:{}", esc(label)),
        CheckpointKind::End => "e".to_owned(),
    }
}

/// Inverse of [`kind_token`].
pub fn parse_kind(token: &str) -> Result<CheckpointKind, Corruption> {
    if token == "e" {
        return Ok(CheckpointKind::End);
    }
    if let Some(idx) = token.strip_prefix("b:") {
        let idx: usize = idx
            .parse()
            .map_err(|_| malformed(format!("bad barrier index in {token:?}")))?;
        return Ok(CheckpointKind::Barrier(BarrierId::from_index(idx)));
    }
    if let Some(label) = token.strip_prefix("m:") {
        return Ok(CheckpointKind::Manual(intern(&unesc(label)?)));
    }
    Err(malformed(format!("unknown checkpoint kind {token:?}")))
}

/// Serializes one completed run under its key. The output is a pure
/// function of `(key, run)` — equal inputs give byte-identical files,
/// which is what makes re-stores idempotent.
pub fn encode_entry(key: &RunKey, run: &CachedRun) -> String {
    let mut body = String::new();
    for (label, value) in key.tokens() {
        let _ = writeln!(body, "key {label}={}", esc(&value));
    }
    let _ = writeln!(
        body,
        "run steps={} native={} zerofill={}",
        run.steps, run.native_instr, run.zero_fill_instr
    );
    let h = &run.hashes;
    let _ = writeln!(
        body,
        "hashes output={} extra={} stores={} hashup={}",
        h.output_digest, h.extra_instr, h.stores, h.hash_updates
    );
    if let Some(c) = h.cache {
        let _ = writeln!(
            body,
            "l1 hits={} misses={} mhm_reads={} mhm_read_misses={}",
            c.hits, c.misses, c.mhm_reads, c.mhm_read_misses
        );
    }
    for cp in &h.checkpoints {
        let _ = writeln!(body, "cp {} {:016x}", kind_token(cp.kind), cp.hash.as_raw());
    }
    if let Some(log) = &run.alloc_log {
        let entries = log.entries();
        let _ = writeln!(body, "alloclog {}", entries.len());
        for ((tid, seq), base) in entries {
            let _ = writeln!(body, "a {tid} {seq} {base}");
        }
    }
    if let Some(events) = &run.sim_trace {
        let _ = writeln!(body, "trace {}", events.len());
        for ev in events {
            ev.write_json_line(&mut body);
            body.push('\n');
        }
    }
    format!(
        "{MAGIC} {FORMAT_VERSION}\nfp {:032x}\nlen {}\nsum {:016x}\n{body}",
        fingerprint_key(key),
        body.len(),
        fnv64(body.as_bytes()),
    )
}

fn header_u64(line: Option<&str>, prefix: &str) -> Result<u64, Corruption> {
    let line = line.ok_or_else(|| malformed(format!("missing {prefix} header line")))?;
    let value = line
        .strip_prefix(prefix)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| malformed(format!("expected {prefix:?} line, found {line:?}")))?;
    u64::from_str_radix(value, if prefix == "len" { 10 } else { 16 })
        .map_err(|_| malformed(format!("bad {prefix} value {value:?}")))
}

/// A parsed field like `steps=4` out of a space-separated record line.
fn field_u64(parts: &mut std::str::SplitWhitespace<'_>, name: &str) -> Result<u64, Corruption> {
    let part = parts
        .next()
        .ok_or_else(|| malformed(format!("missing field {name}")))?;
    let value = part
        .strip_prefix(name)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| malformed(format!("expected {name}=…, found {part:?}")))?;
    value
        .parse()
        .map_err(|_| malformed(format!("bad {name} value {value:?}")))
}

/// Verifies the four header lines — magic, version, fingerprint,
/// length, checksum — and returns the declared fingerprint plus the
/// body slice. The single checksum pass over the body happens here.
fn parse_header(text: &str) -> Result<(u128, &str), Corruption> {
    let mut header_end = 0usize;
    for _ in 0..4 {
        match text[header_end..].find('\n') {
            Some(i) => header_end += i + 1,
            None => return Err(malformed("missing header lines")),
        }
    }
    let mut header = text[..header_end].lines();
    let magic_line = header.next().unwrap_or_default();
    let version = match magic_line
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(' '))
    {
        None => return Err(Corruption::BadMagic),
        Some(v) => v
            .parse::<u32>()
            .map_err(|_| malformed(format!("bad version {v:?}")))?,
    };
    if version != FORMAT_VERSION {
        return Err(Corruption::VersionMismatch { found: version });
    }
    let fp_declared = {
        let line = header.next();
        let line = line.ok_or_else(|| malformed("missing fp header line"))?;
        let value = line
            .strip_prefix("fp ")
            .ok_or_else(|| malformed(format!("expected fp line, found {line:?}")))?;
        u128::from_str_radix(value, 16).map_err(|_| malformed(format!("bad fp {value:?}")))?
    };
    let len = header_u64(header.next(), "len")? as usize;
    let sum = header_u64(header.next(), "sum")?;

    let body = &text[header_end..];
    if body.len() != len {
        return Err(Corruption::Truncated {
            expected: len,
            found: body.len(),
        });
    }
    if fnv64(body.as_bytes()) != sum {
        return Err(Corruption::BadChecksum);
    }
    Ok((fp_declared, body))
}

/// Compares an escaped stored value against a plain expected one
/// without allocating: equivalent to `esc(plain) == escaped`, which
/// (because [`esc`] is injective and [`encode_entry`] is the only
/// writer, always emitting canonical escapes) is equivalent to
/// `unesc(escaped)? == plain`.
fn esc_eq(escaped: &str, plain: &str) -> bool {
    let hx = |n: u8| -> u8 {
        if n < 10 {
            b'0' + n
        } else {
            b'a' + (n - 10)
        }
    };
    let mut e = escaped.bytes();
    for c in plain.chars() {
        match c {
            '%' | ' ' | '\n' | '\r' | '\t' => {
                let code = c as u8;
                if e.next() != Some(b'%')
                    || e.next() != Some(hx(code >> 4))
                    || e.next() != Some(hx(code & 0xf))
                {
                    return false;
                }
            }
            c => {
                let mut buf = [0u8; 4];
                for &b in c.encode_utf8(&mut buf).as_bytes() {
                    if e.next() != Some(b) {
                        return false;
                    }
                }
            }
        }
    }
    e.next().is_none()
}

/// Deserializes one entry, verifying magic, version, length, and
/// checksum before touching any field. Returns the stored key tokens
/// (for the caller to match against the key it looked up) and the run.
///
/// # Errors
///
/// A [`Corruption`] describing the first problem found; the caller
/// quarantines the file and recomputes the run.
pub fn decode_entry(text: &str) -> Result<(Vec<(String, String)>, CachedRun), Corruption> {
    let (fp_declared, body) = parse_header(text)?;

    // Body: key tokens, run record, hashes, then the optional sections.
    let mut lines = body.lines();
    let mut tokens: Vec<(String, String)> = Vec::new();
    let mut pending: Option<&str> = None;
    for line in lines.by_ref() {
        match line.strip_prefix("key ") {
            Some(rest) => {
                let (label, value) = rest
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("bad key line {line:?}")))?;
                tokens.push((label.to_owned(), unesc(value)?));
            }
            None => {
                pending = Some(line);
                break;
            }
        }
    }
    if tokens.is_empty() {
        return Err(malformed("entry has no key tokens"));
    }

    let run = parse_sections(pending, lines)?;

    // The declared fingerprint must match the stored tokens — a file
    // renamed over another entry's address is corruption, not a hit.
    let fields: Vec<(&str, &str)> = tokens
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_str()))
        .collect();
    if crate::fingerprint::fingerprint_fields(&fields) != fp_declared {
        return Err(malformed("declared fingerprint does not match key tokens"));
    }

    Ok((tokens, run))
}

/// The log engine's hot lookup path: decodes one entry *and* verifies
/// it is the record for `(fp, expected)` in a single pass, with no
/// owned-token allocation. Token comparison against the requested
/// key's canonical tokens is strictly stronger than
/// [`decode_entry`]'s fingerprint recomputation (it is the preimage
/// check the fingerprint only approximates), so this path skips the
/// recomputation.
///
/// # Errors
///
/// Any structural [`Corruption`] first; a structurally valid entry
/// whose stored key differs from `expected` (a fingerprint collision,
/// or a record compacted to the wrong address) is
/// [`Corruption::Malformed`], never a hit.
pub(crate) fn decode_entry_for(
    text: &str,
    fp: u128,
    expected: &[(&'static str, &str)],
) -> Result<CachedRun, Corruption> {
    let (fp_declared, body) = parse_header(text)?;
    if fp_declared != fp {
        return Err(malformed("stored entry does not match its address"));
    }

    let mut lines = body.lines();
    let mut matched = 0usize;
    let mut mismatch = false;
    let mut pending: Option<&str> = None;
    for line in lines.by_ref() {
        match line.strip_prefix("key ") {
            Some(rest) => {
                let (label, value) = rest
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("bad key line {line:?}")))?;
                match expected.get(matched) {
                    Some((el, ev)) if *el == label && esc_eq(value, ev) => matched += 1,
                    _ => mismatch = true,
                }
            }
            None => {
                pending = Some(line);
                break;
            }
        }
    }
    if matched == 0 && !mismatch {
        return Err(malformed("entry has no key tokens"));
    }

    // Structural damage outranks a key mismatch, exactly as in the
    // two-pass path (decode first, compare after).
    let run = parse_sections(pending, lines)?;
    if mismatch || matched != expected.len() {
        return Err(malformed("stored key does not match its address"));
    }
    Ok(run)
}

/// Parses everything after the key tokens — the run record, hashes,
/// and the optional l1/checkpoint/alloclog/trace sections — consuming
/// the remaining body lines.
fn parse_sections(
    pending: Option<&str>,
    mut lines: std::str::Lines<'_>,
) -> Result<CachedRun, Corruption> {
    let run_line = pending.ok_or_else(|| malformed("missing run line"))?;
    let mut parts = run_line
        .strip_prefix("run ")
        .ok_or_else(|| malformed(format!("expected run line, found {run_line:?}")))?
        .split_whitespace();
    let steps = field_u64(&mut parts, "steps")?;
    let native_instr = field_u64(&mut parts, "native")?;
    let zero_fill_instr = field_u64(&mut parts, "zerofill")?;

    let hashes_line = lines
        .next()
        .ok_or_else(|| malformed("missing hashes line"))?;
    let mut parts = hashes_line
        .strip_prefix("hashes ")
        .ok_or_else(|| malformed(format!("expected hashes line, found {hashes_line:?}")))?
        .split_whitespace();
    let output_digest = field_u64(&mut parts, "output")?;
    let extra_instr = field_u64(&mut parts, "extra")?;
    let stores = field_u64(&mut parts, "stores")?;
    let hash_updates = field_u64(&mut parts, "hashup")?;

    let mut cache = None;
    // Typical runs carry a handful of checkpoints; one reservation
    // keeps the common case to a single allocation.
    let mut checkpoints: Vec<CheckpointRecord> = Vec::with_capacity(8);
    let mut alloc_log: Option<Arc<AllocLog>> = None;
    let mut sim_trace = None;
    let mut next = lines.next();
    if let Some(line) = next.filter(|l| l.starts_with("l1 ")) {
        let mut parts = line["l1 ".len()..].split_whitespace();
        cache = Some(mhm_stats(
            field_u64(&mut parts, "hits")?,
            field_u64(&mut parts, "misses")?,
            field_u64(&mut parts, "mhm_reads")?,
            field_u64(&mut parts, "mhm_read_misses")?,
        ));
        next = lines.next();
    }
    while let Some(line) = next.filter(|l| l.starts_with("cp ")) {
        let rest = &line["cp ".len()..];
        let (kind, hash) = rest
            .rsplit_once(' ')
            .ok_or_else(|| malformed(format!("bad cp line {line:?}")))?;
        let hash = u64::from_str_radix(hash, 16)
            .map_err(|_| malformed(format!("bad cp hash {hash:?}")))?;
        checkpoints.push(CheckpointRecord {
            kind: parse_kind(kind)?,
            hash: HashSum::from_raw(hash),
        });
        next = lines.next();
    }
    if let Some(line) = next.filter(|l| l.starts_with("alloclog ")) {
        let count: usize = line["alloclog ".len()..]
            .parse()
            .map_err(|_| malformed(format!("bad alloclog count in {line:?}")))?;
        let mut log = AllocLog::default();
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| malformed("alloclog shorter than declared"))?;
            let mut parts = line
                .strip_prefix("a ")
                .ok_or_else(|| malformed(format!("expected alloc line, found {line:?}")))?
                .split_whitespace();
            let mut num = |name: &str| -> Result<u64, Corruption> {
                parts
                    .next()
                    .ok_or_else(|| malformed(format!("missing alloc {name}")))?
                    .parse()
                    .map_err(|_| malformed(format!("bad alloc {name}")))
            };
            let tid = num("tid")? as usize;
            let seq = num("seq")?;
            let base = num("base")?;
            log.insert(tid, seq, base);
        }
        alloc_log = Some(Arc::new(log));
        next = lines.next();
    }
    if let Some(line) = next.filter(|l| l.starts_with("trace ")) {
        let count: usize = line["trace ".len()..]
            .parse()
            .map_err(|_| malformed(format!("bad trace count in {line:?}")))?;
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| malformed("trace shorter than declared"))?;
            let v = json::parse(line).map_err(|e| malformed(format!("trace line: {e}")))?;
            events.push(
                obs::Event::from_json(&v).map_err(|e| malformed(format!("trace line: {e}")))?,
            );
        }
        sim_trace = Some(events);
        next = lines.next();
    }
    if let Some(line) = next {
        return Err(malformed(format!("unexpected trailing line {line:?}")));
    }

    Ok(CachedRun {
        hashes: RunHashes {
            checkpoints,
            output_digest,
            extra_instr,
            stores,
            hash_updates,
            cache,
        },
        steps,
        native_instr,
        zero_fill_instr,
        alloc_log,
        sim_trace,
    })
}

/// Builds the `mhm` counter struct without naming its crate in our
/// dependency list twice (the fields are all public).
fn mhm_stats(hits: u64, misses: u64, mhm_reads: u64, mhm_read_misses: u64) -> mhm::CacheStats {
    mhm::CacheStats {
        hits,
        misses,
        mhm_reads,
        mhm_read_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "with space", "pct%20", "tab\tnl\n", "%%", ""] {
            assert_eq!(unesc(&esc(s)).unwrap(), s);
        }
        assert!(unesc("%zz").is_err());
        assert!(unesc("%2").is_err());
    }

    #[test]
    fn esc_eq_agrees_with_escaping() {
        for s in [
            "plain",
            "with space",
            "pct%20",
            "tab\tnl\n",
            "%%",
            "",
            "ünïcode",
        ] {
            assert!(esc_eq(&esc(s), s), "esc_eq rejects esc({s:?})");
        }
        assert!(!esc_eq("plain", "plaiN"));
        assert!(!esc_eq("plain", "plain "));
        assert!(!esc_eq("plain%20", "plain"));
        assert!(!esc_eq("a%20b", "a b c"));
        assert!(!esc_eq("a b", "a b"), "unescaped space never matches");
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in [
            CheckpointKind::End,
            CheckpointKind::Barrier(BarrierId::from_index(3)),
            CheckpointKind::Manual("iter end"),
        ] {
            assert_eq!(parse_kind(&kind_token(kind)).unwrap(), kind);
        }
        assert!(parse_kind("x:1").is_err());
        assert!(parse_kind("b:notanum").is_err());
    }

    #[test]
    fn interning_deduplicates() {
        let a = intern("label-a");
        let b = intern("label-a");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "label-a");
    }
}
