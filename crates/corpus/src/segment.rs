//! `icseg-v1` — the on-disk framing of log segments.
//!
//! A corpus is a sequence of append-only *segment* files. Each segment
//! holds framed records:
//!
//! ```text
//! rec <fp:032x> <len> <sum:016x>\n
//! <len bytes of payload>
//! ```
//!
//! where `fp` is the record's 128-bit [`RunKey`](instantcheck::RunKey)
//! fingerprint, `len` the exact payload byte count, and `sum` the
//! FNV-1a checksum of the payload bytes. The payload is a complete
//! `icorpus-v1` entry ([`encode_entry`](crate::encode_entry)), so every
//! record carries its own magic, version, and content checksum in
//! addition to the frame — the frame is what makes the log scannable
//! and the tail truncatable; the payload is what makes a record
//! trustworthy.
//!
//! Exactly one segment per store is *active* (`seg-NNNNNNNN.open`) and
//! appended in place; full segments are *sealed* by an atomic rename to
//! `seg-NNNNNNNN.icseg` and never written again. A crash can therefore
//! damage at most the tail of the active segment, and
//! [`scan_segment`] finds exactly where the damage starts: the scan
//! validates frame structure and payload bounds, stops at the first
//! byte that cannot be a record frame, and reports the valid prefix
//! length so the opener can truncate the torn tail away. Frame payload
//! checksums are deliberately *not* verified during the scan — content
//! integrity is checked on every read through the payload's own
//! `icorpus-v1` header (checksum, length, fingerprint, and a
//! field-for-field key comparison), where a bad record quarantines
//! individually instead of poisoning the records behind it. The frame
//! `sum` exists for the scan's structural validation and offline
//! tooling; the entry's own checksum is what reads trust.

use crate::fingerprint::fnv64;

/// Magic token of the segment format (the `format` marker reads
/// `icseg 1`).
pub const SEGMENT_MAGIC: &str = "icseg";

/// Version of the segment format. Bumped on any change to the frame
/// encoding; a store of a different version is refused at open.
pub const SEGMENT_VERSION: u32 = 1;

/// Default size bound of the active segment: once an append would grow
/// it past this many bytes it is sealed and a new one started. Sized so
/// a realistic campaign's records (a few KiB each) pack thousands per
/// segment while compaction still has usefully small units to rewrite.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// The longest frame line we accept: `rec ` + 32 hex + space + 20
/// decimal digits + space + 16 hex + newline, with slack.
const MAX_FRAME_LINE: usize = 96;

/// One record frame as scanned from a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScannedRecord {
    /// The record's key fingerprint.
    pub fp: u128,
    /// Byte offset of the whole record (frame line) in the segment.
    pub record_offset: u64,
    /// Total record length: frame line plus payload.
    pub record_len: u64,
    /// Byte offset of the payload in the segment.
    pub payload_offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// Declared FNV-1a checksum of the payload.
    pub sum: u64,
}

/// The result of structurally scanning one segment's bytes.
#[derive(Debug)]
pub(crate) struct SegmentScan {
    /// Every structurally valid record, in file order.
    pub records: Vec<ScannedRecord>,
    /// Length of the valid prefix. Equal to the input length when the
    /// segment is clean; shorter when a torn tail follows.
    pub valid_len: u64,
    /// Bytes past `valid_len` that cannot be parsed as records — the
    /// torn tail of a crashed append, preserved for quarantine.
    pub torn: bool,
}

/// File name of a sealed segment.
pub(crate) fn sealed_name(id: u64) -> String {
    format!("seg-{id:08}.{SEGMENT_MAGIC}")
}

/// File name of the active (append-in-place) segment.
pub(crate) fn open_name(id: u64) -> String {
    format!("seg-{id:08}.open")
}

/// Parses a segment file name into `(id, sealed)`.
pub(crate) fn parse_segment_name(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("seg-")?;
    if let Some(id) = rest
        .strip_suffix(".icseg")
        .and_then(|d| d.parse::<u64>().ok())
    {
        return Some((id, true));
    }
    if let Some(id) = rest
        .strip_suffix(".open")
        .and_then(|d| d.parse::<u64>().ok())
    {
        return Some((id, false));
    }
    None
}

/// Encodes one framed record: frame line plus payload, ready to append.
pub(crate) fn encode_record(fp: u128, payload: &[u8]) -> Vec<u8> {
    let frame = format!("rec {fp:032x} {} {:016x}\n", payload.len(), fnv64(payload));
    let mut out = Vec::with_capacity(frame.len() + payload.len());
    out.extend_from_slice(frame.as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses one frame line (without the newline). Strict: exactly four
/// space-separated tokens, fixed-width hex fields.
fn parse_frame(line: &[u8]) -> Option<(u128, u32, u64)> {
    let line = std::str::from_utf8(line).ok()?;
    let mut parts = line.split(' ');
    if parts.next()? != "rec" {
        return None;
    }
    let fp_hex = parts.next()?;
    let len_dec = parts.next()?;
    let sum_hex = parts.next()?;
    if parts.next().is_some() || fp_hex.len() != 32 || sum_hex.len() != 16 {
        return None;
    }
    let fp = u128::from_str_radix(fp_hex, 16).ok()?;
    let len = len_dec.parse::<u32>().ok()?;
    let sum = u64::from_str_radix(sum_hex, 16).ok()?;
    Some((fp, len, sum))
}

/// Structurally scans `bytes` as a segment: parses frame lines, bounds-
/// checks payloads, and stops at the first byte that cannot start a
/// record. Does not verify payload checksums (see the module docs).
pub(crate) fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let window = &bytes[offset..bytes.len().min(offset + MAX_FRAME_LINE)];
        let Some(nl) = window.iter().position(|&b| b == b'\n') else {
            break; // no frame line terminator in range: torn tail
        };
        let Some((fp, len, sum)) = parse_frame(&window[..nl]) else {
            break; // unparseable frame: torn tail
        };
        let payload_offset = offset + nl + 1;
        let end = payload_offset + len as usize;
        if end > bytes.len() {
            break; // payload cut short: torn tail
        }
        records.push(ScannedRecord {
            fp,
            record_offset: offset as u64,
            record_len: (end - offset) as u64,
            payload_offset: payload_offset as u64,
            payload_len: len,
            sum,
        });
        offset = end;
    }
    SegmentScan {
        records,
        valid_len: offset as u64,
        torn: offset < bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FNV-1a checksum of a payload, as a frame's `sum` declares it.
    fn payload_sum(payload: &[u8]) -> u64 {
        fnv64(payload)
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(sealed_name(7), "seg-00000007.icseg");
        assert_eq!(open_name(12), "seg-00000012.open");
        assert_eq!(parse_segment_name("seg-00000007.icseg"), Some((7, true)));
        assert_eq!(parse_segment_name("seg-00000012.open"), Some((12, false)));
        assert_eq!(parse_segment_name("seg-xx.icseg"), None);
        assert_eq!(parse_segment_name("other"), None);
        assert_eq!(parse_segment_name("seg-1.tmp"), None);
    }

    #[test]
    fn scan_round_trips_multiple_records() {
        let mut bytes = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![b"alpha\n".to_vec(), b"beta longer\n".to_vec()];
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(i as u128 + 1, p));
        }
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        for (i, (rec, p)) in scan.records.iter().zip(&payloads).enumerate() {
            assert_eq!(rec.fp, i as u128 + 1);
            assert_eq!(rec.payload_len as usize, p.len());
            assert_eq!(rec.sum, payload_sum(p));
            let got = &bytes[rec.payload_offset as usize..][..rec.payload_len as usize];
            assert_eq!(got, &p[..]);
        }
    }

    #[test]
    fn torn_tail_is_cut_at_the_last_whole_record() {
        let mut bytes = encode_record(1, b"whole record\n");
        let keep = bytes.len() as u64;
        let second = encode_record(2, b"this one is torn\n");
        bytes.extend_from_slice(&second[..second.len() - 5]);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn);
    }

    #[test]
    fn garbage_frame_stops_the_scan() {
        let mut bytes = encode_record(1, b"ok\n");
        let keep = bytes.len() as u64;
        bytes.extend_from_slice(b"not a frame line at all\n plus junk");
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert!(scan.torn);
    }

    #[test]
    fn scan_does_not_verify_payload_sums() {
        // A bit-flipped payload still scans (content checks happen at
        // read time so one bad record cannot poison its successors).
        let mut bytes = encode_record(1, b"payload a\n");
        let flip = bytes.len() - 2;
        bytes[flip] ^= 1;
        bytes.extend_from_slice(&encode_record(2, b"payload b\n"));
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records.len(), 2);
        assert!(!scan.torn);
    }
}
