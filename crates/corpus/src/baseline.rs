//! Named campaign baselines and drift detection.
//!
//! A [`CampaignBaseline`] freezes what a known-good campaign produced —
//! the reference run's per-checkpoint hashes and the campaign's summary
//! verdicts — as a small JSON artifact. A later campaign over the same
//! workload is [`compare`](CampaignBaseline::compare)d against it and
//! every discrepancy is reported as a [`Drift`], with the *first*
//! divergent checkpoint localized by index (divergence is cumulative in
//! an incremental hash, so later mismatches are noise).

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use instantcheck::{CheckReport, RunHashes, Scheme};
use obs::json::{self, write_str, Value};

use crate::entry::kind_token;

/// A recorded reference outcome for one `(workload, scheme, runs,
/// base_seed)` campaign.
///
/// # Example
///
/// ```
/// use corpus::CampaignBaseline;
/// use instantcheck::{CheckReport, Checker, CheckerConfig, Scheme};
/// use tsim::{ProgramBuilder, ValKind};
///
/// let source = || {
///     let mut b = ProgramBuilder::new(2);
///     let g = b.global("G", ValKind::U64, 1);
///     let lock = b.mutex();
///     for t in 0..2u64 {
///         b.thread(move |ctx| {
///             ctx.lock(lock);
///             let v = ctx.load(g.at(0));
///             ctx.store(g.at(0), v + t + 1);
///             ctx.unlock(lock);
///         });
///     }
///     b.build()
/// };
///
/// let checker = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(4)).expect("valid config");
/// let runs = checker.collect_runs(&source).unwrap();
/// let report = CheckReport::from_runs(&runs);
/// let baseline = CampaignBaseline::capture(
///     "g-plus-t", "g-plus-t:full", Scheme::HwInc, 1, &runs[0], &report,
/// );
///
/// // A fresh identical campaign shows no drift…
/// let fresh = checker.collect_runs(&source).unwrap();
/// let fresh_report = CheckReport::from_runs(&fresh);
/// assert!(baseline.compare(&fresh[0], &fresh_report).is_empty());
///
/// // …and the JSON round-trip is lossless.
/// let json = baseline.to_json();
/// let back = CampaignBaseline::from_json(&json).unwrap();
/// assert!(back.compare(&fresh[0], &fresh_report).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignBaseline {
    /// The baseline's name (its file stem under `baselines/`).
    pub name: String,
    /// The workload id the campaign ran (the caller's contract, as in
    /// [`RunKey::workload`](instantcheck::RunKey::workload)).
    pub workload: String,
    /// The checking scheme, by stable [`Scheme::name`].
    pub scheme: String,
    /// Runs the campaign compared.
    pub runs: usize,
    /// The campaign's base scheduler seed.
    pub base_seed: u64,
    /// The reference run's checkpoints as `(kind token, hash)` pairs —
    /// the hashes a drift is localized against.
    pub reference: Vec<(String, u64)>,
    /// The reference run's output-stream digest.
    pub output_digest: u64,
    /// Whether the campaign found the end state deterministic.
    pub det_at_end: bool,
    /// Nondeterministic checking points the campaign found.
    pub ndet_points: usize,
    /// Whether runs disagreed on checkpoint count/kind.
    pub structural_divergence: bool,
    /// Failed run attempts the campaign's policy absorbed.
    pub failed_runs: usize,
    /// The report's grouped distributions as `(rendered, count)` — the
    /// Figure 5 presentation, e.g. `("16-11-3", 2)`.
    pub groups: Vec<(String, usize)>,
}

/// One discrepancy between a fresh campaign and a recorded baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// The reference run's hash changed at a checkpoint. Only the first
    /// such checkpoint is reported — an incremental hash carries every
    /// earlier divergence forward.
    ReferenceHash {
        /// Index of the first divergent checkpoint.
        checkpoint: usize,
        /// The kind token recorded in the baseline.
        kind: String,
        /// The baseline hash.
        expected: u64,
        /// The fresh hash.
        got: u64,
    },
    /// A checkpoint fired with a different kind than the baseline
    /// recorded (control flow reached a different checking point).
    ReferenceKind {
        /// Index of the first checkpoint whose kind changed.
        checkpoint: usize,
        /// The kind token recorded in the baseline.
        expected: String,
        /// The fresh kind token.
        got: String,
    },
    /// The reference run fired a different number of checkpoints.
    CheckpointCount {
        /// Checkpoints in the baseline.
        expected: usize,
        /// Checkpoints in the fresh run.
        got: usize,
    },
    /// The reference run's output digest changed.
    OutputDigest {
        /// The baseline digest.
        expected: u64,
        /// The fresh digest.
        got: u64,
    },
    /// A summary verdict of the campaign changed.
    Summary {
        /// Which summary field drifted (e.g. `ndet_points`).
        field: &'static str,
        /// The baseline value, rendered.
        expected: String,
        /// The fresh value, rendered.
        got: String,
    },
}

impl fmt::Display for Drift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drift::ReferenceHash {
                checkpoint,
                kind,
                expected,
                got,
            } => write!(
                f,
                "checkpoint {checkpoint} ({kind}): hash {got:016x}, baseline {expected:016x}"
            ),
            Drift::ReferenceKind {
                checkpoint,
                expected,
                got,
            } => write!(
                f,
                "checkpoint {checkpoint}: kind {got}, baseline {expected}"
            ),
            Drift::CheckpointCount { expected, got } => {
                write!(
                    f,
                    "reference run fired {got} checkpoints, baseline {expected}"
                )
            }
            Drift::OutputDigest { expected, got } => {
                write!(f, "output digest {got:016x}, baseline {expected:016x}")
            }
            Drift::Summary {
                field,
                expected,
                got,
            } => write!(f, "summary {field}: {got}, baseline {expected}"),
        }
    }
}

impl CampaignBaseline {
    /// Captures a baseline from a finished campaign: `reference` is the
    /// campaign's reference run (run 1), `report` its verdicts.
    pub fn capture(
        name: impl Into<String>,
        workload: impl Into<String>,
        scheme: Scheme,
        base_seed: u64,
        reference: &RunHashes,
        report: &CheckReport,
    ) -> CampaignBaseline {
        CampaignBaseline {
            name: name.into(),
            workload: workload.into(),
            scheme: scheme.name().to_owned(),
            runs: report.runs,
            base_seed,
            reference: reference
                .checkpoints
                .iter()
                .map(|cp| (kind_token(cp.kind), cp.hash.as_raw()))
                .collect(),
            output_digest: reference.output_digest,
            det_at_end: report.det_at_end,
            ndet_points: report.ndet_points,
            structural_divergence: report.structural_divergence,
            failed_runs: report.failures.len(),
            groups: report
                .grouped_distributions()
                .into_iter()
                .map(|(d, count)| (d.to_string(), count))
                .collect(),
        }
    }

    /// Compares a fresh campaign against this baseline. An empty vector
    /// means no drift. Reference-run drifts come first (hash divergence
    /// localized to the first divergent checkpoint), then the output
    /// digest, then summary-verdict changes.
    pub fn compare(&self, reference: &RunHashes, report: &CheckReport) -> Vec<Drift> {
        let mut drifts = Vec::new();

        let fresh: Vec<(String, u64)> = reference
            .checkpoints
            .iter()
            .map(|cp| (kind_token(cp.kind), cp.hash.as_raw()))
            .collect();
        let mut reference_diverged = false;
        for (i, (base, new)) in self.reference.iter().zip(&fresh).enumerate() {
            if base.0 != new.0 {
                drifts.push(Drift::ReferenceKind {
                    checkpoint: i,
                    expected: base.0.clone(),
                    got: new.0.clone(),
                });
                reference_diverged = true;
                break;
            }
            if base.1 != new.1 {
                drifts.push(Drift::ReferenceHash {
                    checkpoint: i,
                    kind: base.0.clone(),
                    expected: base.1,
                    got: new.1,
                });
                reference_diverged = true;
                break;
            }
        }
        if !reference_diverged && self.reference.len() != fresh.len() {
            drifts.push(Drift::CheckpointCount {
                expected: self.reference.len(),
                got: fresh.len(),
            });
        }
        if self.output_digest != reference.output_digest {
            drifts.push(Drift::OutputDigest {
                expected: self.output_digest,
                got: reference.output_digest,
            });
        }

        let mut summary = |field: &'static str, expected: String, got: String| {
            if expected != got {
                drifts.push(Drift::Summary {
                    field,
                    expected,
                    got,
                });
            }
        };
        summary("runs", self.runs.to_string(), report.runs.to_string());
        summary(
            "ndet_points",
            self.ndet_points.to_string(),
            report.ndet_points.to_string(),
        );
        summary(
            "det_at_end",
            self.det_at_end.to_string(),
            report.det_at_end.to_string(),
        );
        summary(
            "structural_divergence",
            self.structural_divergence.to_string(),
            report.structural_divergence.to_string(),
        );
        summary(
            "failed_runs",
            self.failed_runs.to_string(),
            report.failures.len().to_string(),
        );
        let fresh_groups: Vec<(String, usize)> = report
            .grouped_distributions()
            .into_iter()
            .map(|(d, count)| (d.to_string(), count))
            .collect();
        let render = |groups: &[(String, usize)]| {
            groups
                .iter()
                .map(|(d, c)| format!("{d}x{c}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        summary("groups", render(&self.groups), render(&fresh_groups));

        drifts
    }

    /// Serializes the baseline as deterministic, human-diffable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"name\": ");
        write_str(&mut out, &self.name);
        out.push_str(",\n  \"workload\": ");
        write_str(&mut out, &self.workload);
        out.push_str(",\n  \"scheme\": ");
        write_str(&mut out, &self.scheme);
        out.push_str(&format!(",\n  \"runs\": {}", self.runs));
        out.push_str(&format!(",\n  \"base_seed\": {}", self.base_seed));
        out.push_str(&format!(",\n  \"output_digest\": {}", self.output_digest));
        out.push_str(&format!(",\n  \"det_at_end\": {}", self.det_at_end));
        out.push_str(&format!(",\n  \"ndet_points\": {}", self.ndet_points));
        out.push_str(&format!(
            ",\n  \"structural_divergence\": {}",
            self.structural_divergence
        ));
        out.push_str(&format!(",\n  \"failed_runs\": {}", self.failed_runs));
        out.push_str(",\n  \"reference\": [");
        for (i, (kind, hash)) in self.reference.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    [");
            write_str(&mut out, kind);
            out.push_str(&format!(", {hash}]"));
        }
        out.push_str("\n  ],\n  \"groups\": [");
        for (i, (dist, count)) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    [");
            write_str(&mut out, dist);
            out.push_str(&format!(", {count}]"));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a baseline back from its [`to_json`](Self::to_json) form.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json(text: &str) -> Result<CampaignBaseline, String> {
        let v = json::parse(text)?;
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let bool_field = |name: &str| -> Result<bool, String> {
            match v.get(name) {
                Some(Value::Bool(b)) => Ok(*b),
                _ => Err(format!("missing boolean field {name:?}")),
            }
        };
        let pairs = |name: &str| -> Result<Vec<(String, u64)>, String> {
            let arr = match v.get(name) {
                Some(Value::Arr(items)) => items,
                _ => return Err(format!("missing array field {name:?}")),
            };
            arr.iter()
                .map(|item| match item {
                    Value::Arr(pair) if pair.len() == 2 => {
                        let s = pair[0]
                            .as_str()
                            .ok_or_else(|| format!("bad pair in {name:?}"))?;
                        let n = pair[1]
                            .as_u64()
                            .ok_or_else(|| format!("bad pair in {name:?}"))?;
                        Ok((s.to_owned(), n))
                    }
                    _ => Err(format!("bad pair in {name:?}")),
                })
                .collect()
        };
        Ok(CampaignBaseline {
            name: str_field("name")?,
            workload: str_field("workload")?,
            scheme: str_field("scheme")?,
            runs: u64_field("runs")? as usize,
            base_seed: u64_field("base_seed")?,
            reference: pairs("reference")?,
            output_digest: u64_field("output_digest")?,
            det_at_end: bool_field("det_at_end")?,
            ndet_points: u64_field("ndet_points")? as usize,
            structural_divergence: bool_field("structural_divergence")?,
            failed_runs: u64_field("failed_runs")? as usize,
            groups: pairs("groups")?
                .into_iter()
                .map(|(d, c)| (d, c as usize))
                .collect(),
        })
    }

    /// Writes the baseline under `dir` as `<name>.json`.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from creating the directory or writing.
    pub fn save(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.json", self.name)), self.to_json())
    }

    /// Loads the baseline named `name` from `dir`.
    ///
    /// # Errors
    ///
    /// An [`io::Error`]; parse failures surface as
    /// [`InvalidData`](io::ErrorKind::InvalidData).
    pub fn load(dir: impl AsRef<Path>, name: &str) -> io::Result<CampaignBaseline> {
        let text = fs::read_to_string(dir.as_ref().join(format!("{name}.json")))?;
        CampaignBaseline::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::HashSum;
    use instantcheck::CheckpointRecord;
    use tsim::{BarrierId, CheckpointKind};

    fn hashes(seq: &[(CheckpointKind, u64)], output: u64) -> RunHashes {
        RunHashes {
            checkpoints: seq
                .iter()
                .map(|&(kind, h)| CheckpointRecord {
                    kind,
                    hash: HashSum::from_raw(h),
                })
                .collect(),
            output_digest: output,
            extra_instr: 0,
            stores: 0,
            hash_updates: 0,
            cache: None,
        }
    }

    fn sample() -> (RunHashes, CheckReport) {
        let reference = hashes(
            &[
                (CheckpointKind::Barrier(BarrierId::from_index(0)), 11),
                (CheckpointKind::Manual("iter"), 22),
                (CheckpointKind::End, 33),
            ],
            7,
        );
        let report = CheckReport::from_runs(&[reference.clone(), reference.clone()]);
        (reference, report)
    }

    #[test]
    fn identical_campaign_shows_no_drift() {
        let (reference, report) = sample();
        let b = CampaignBaseline::capture("b", "w", Scheme::HwInc, 1, &reference, &report);
        assert!(b.compare(&reference, &report).is_empty());
    }

    #[test]
    fn first_divergent_checkpoint_is_localized() {
        let (reference, report) = sample();
        let b = CampaignBaseline::capture("b", "w", Scheme::HwInc, 1, &reference, &report);
        let mut perturbed = reference.clone();
        perturbed.checkpoints[1].hash = HashSum::from_raw(99);
        perturbed.checkpoints[2].hash = HashSum::from_raw(98);
        let drifts = b.compare(&perturbed, &report);
        assert_eq!(
            drifts
                .iter()
                .filter(|d| matches!(d, Drift::ReferenceHash { .. }))
                .count(),
            1,
            "only the first divergent checkpoint is reported"
        );
        match &drifts[0] {
            Drift::ReferenceHash {
                checkpoint,
                kind,
                expected,
                got,
            } => {
                assert_eq!(*checkpoint, 1);
                assert_eq!(kind, "m:iter");
                assert_eq!((*expected, *got), (22, 99));
            }
            other => panic!("expected ReferenceHash first, got {other:?}"),
        }
    }

    #[test]
    fn output_and_summary_drift_detected() {
        let (reference, report) = sample();
        let b = CampaignBaseline::capture("b", "w", Scheme::HwInc, 1, &reference, &report);
        let mut fresh = reference.clone();
        fresh.output_digest = 1234;
        let other = hashes(&[(CheckpointKind::End, 5)], 7);
        let ndet_report = CheckReport::from_runs(&[reference.clone(), other]);
        let drifts = b.compare(&fresh, &ndet_report);
        assert!(drifts
            .iter()
            .any(|d| matches!(d, Drift::OutputDigest { got: 1234, .. })));
        assert!(drifts.iter().any(
            |d| matches!(d, Drift::Summary { field, .. } if *field == "structural_divergence")
        ));
        for d in &drifts {
            assert!(!d.to_string().is_empty());
        }
    }

    #[test]
    fn missing_checkpoints_reported_as_count_drift() {
        let (reference, report) = sample();
        let b = CampaignBaseline::capture("b", "w", Scheme::HwInc, 1, &reference, &report);
        let mut short = reference.clone();
        short.checkpoints.pop();
        let drifts = b.compare(&short, &report);
        assert!(matches!(
            drifts[0],
            Drift::CheckpointCount {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let (reference, report) = sample();
        let b = CampaignBaseline::capture(
            "fig5-hwinc",
            "w:scaled",
            Scheme::HwInc,
            1,
            &reference,
            &report,
        );
        let back = CampaignBaseline::from_json(&b.to_json()).expect("parses");
        assert_eq!(b, back);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("corpus-baseline-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (reference, report) = sample();
        let b = CampaignBaseline::capture("named", "w", Scheme::SwInc, 9, &reference, &report);
        b.save(&dir).unwrap();
        let loaded = CampaignBaseline::load(&dir, "named").unwrap();
        assert_eq!(b, loaded);
        assert!(CampaignBaseline::load(&dir, "absent").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
