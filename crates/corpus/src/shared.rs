//! A lock-free shared run cache for concurrent campaigns.
//!
//! When many campaigns run at once against one [`RunCache`] — the
//! `icd` orchestrator's whole point — the cache is the one structure
//! every worker touches on every run slot, and any lock in it becomes
//! the serialization point the scaling sweep pays for. [`SharedCache`]
//! removes the locks: it is an open-addressing hash table over a
//! **fixed arena** of slots, in the style of the shared state tables
//! used for multi-core reachability (Laarman et al., *Boosting
//! Multi-Core Reachability Performance with Shared Hash Tables*). Every
//! operation on the table is a short linear probe over atomic words —
//! no mutex, no stripe, no allocation after construction.
//!
//! Three ideas carry the design:
//!
//! * **Hash memoization.** A slot memoizes the 128-bit fingerprint of
//!   its key next to the slot state, so probing compares two `u64`
//!   loads per step instead of re-deriving or re-comparing canonical
//!   key strings. The fingerprint is written exactly once in a slot's
//!   lifetime (under the `RESERVED` micro-state, by the unique thread
//!   that won the slot's empty-CAS), which is what makes tag reads
//!   safe without any lock or version counter.
//! * **CAS slot claiming.** An empty slot is claimed with a single
//!   compare-and-swap on its state word. The winner owns the slot;
//!   losers re-read and either find the published value or wait for
//!   it. See the slot state machine on [`SharedCache`].
//! * **In-flight claims.** A claimed-but-unpublished slot marks a run
//!   that some worker is *currently computing*. Other workers that
//!   need the same key wait for the publication instead of
//!   re-simulating the run — across concurrent campaigns, every
//!   distinct run is computed at most once per process. A claimant
//!   that fails (a run that errors is never cached) abandons the
//!   claim, waking the waiters, one of which re-claims and computes.
//!
//! Correctness note: as with the striped memo this replaces, the arena
//! is a pure pass-through cache of the inner store's contents, and
//! determinism never depends on hitting it — a miss just re-asks the
//! inner cache, and a hit replays through the checker's normal
//! reduction path. Artifacts therefore stay byte-identical to solo
//! runs regardless of which worker computed which entry, in what
//! order, or whether the arena was full. The wait/retry/probe tallies
//! are wall-clock telemetry and never feed deterministic artifacts.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use instantcheck::{CacheLease, CachedRun, RunCache, RunKey};
use obs::{Registry, Telemetry};

use crate::fingerprint::fingerprint_key;

/// Default arena capacity in slots. Sized so realistic campaign
/// batches (tens of campaigns × tens of runs) stay far below the
/// insertion cap; at ~72 bytes a slot the default arena is ~1 MiB.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 14;

/// Telemetry histogram fed with the wall-clock duration of every
/// arena acquisition (`begin`): probe time plus, on the slow path, the
/// in-flight wait. Always sampled under cache traffic, so contention
/// shows up as a fat tail of one series rather than a separate one.
pub const CACHE_ACQUIRE_HISTOGRAM: &str = "icd.cache.acquire";

/// Telemetry histogram fed only with in-flight claim waits — the time
/// a worker spent parked on another worker's computation of the same
/// key. Empty when no two workers ever raced a key.
pub const CACHE_WAIT_HISTOGRAM: &str = "icd.cache.wait";

/// Slots examined before a probe sequence gives up. With the insertion
/// cap holding the arena at ≤ 3/4 load, linear-probe clusters longer
/// than this are vanishingly rare; a sequence that exhausts the limit
/// falls through to the inner cache uncached (correct, just unmemoized)
/// and is counted in [`SharedCacheStats::arena_full`].
const PROBE_LIMIT: usize = 64;

/// Occupancy bound: past 3/4 load no new slots are claimed (existing
/// entries still hit), keeping probe sequences short instead of letting
/// a full table degrade every miss into a linear scan.
const fn insert_cap(capacity: usize) -> usize {
    capacity - capacity / 4
}

// Slot states. A slot's lifetime is
// EMPTY → RESERVED → CLAIMED → {PUBLISHED | ABANDONED},
// with ABANDONED re-claimable (→ CLAIMED). PUBLISHED is terminal.
/// Never used; the fingerprint tags are meaningless.
const EMPTY: u64 = 0;
/// Won by an empty-CAS; the winner is writing the fingerprint tags.
/// Transient for a few instructions; probers spin through it.
const RESERVED: u64 = 1;
/// Tags frozen; some worker is computing this key's run.
const CLAIMED: u64 = 2;
/// Tags frozen; the value cell holds the published outcome. Terminal.
const PUBLISHED: u64 = 3;
/// Tags frozen; the claimant failed without publishing. Re-claimable.
const ABANDONED: u64 = 4;

/// One arena slot: the state word, the memoized key fingerprint, and
/// the write-once value cells.
#[derive(Debug)]
struct Slot {
    state: AtomicU64,
    fp_lo: AtomicU64,
    fp_hi: AtomicU64,
    /// The published outcome. Set at most once, by whichever thread
    /// moves the slot to `PUBLISHED`.
    value: OnceLock<Arc<CachedRun>>,
    /// A one-shot traced replacement: when a traceless entry is later
    /// recomputed by a tracing campaign, the traced outcome lands here
    /// (trace presence is terminal, so one upgrade cell suffices) and
    /// shadows `value` for every subsequent reader.
    upgrade: OnceLock<Arc<CachedRun>>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: AtomicU64::new(EMPTY),
            fp_lo: AtomicU64::new(0),
            fp_hi: AtomicU64::new(0),
            value: OnceLock::new(),
            upgrade: OnceLock::new(),
        }
    }

    /// The slot's current best value: the traced upgrade when present,
    /// the original publication otherwise. Callers must have observed
    /// `PUBLISHED` first.
    fn best(&self) -> Option<Arc<CachedRun>> {
        self.upgrade.get().or_else(|| self.value.get()).cloned()
    }
}

/// Wall-clock contention tallies. Strictly telemetry: the values
/// depend on thread interleaving and never feed deterministic
/// artifacts or lookups.
#[derive(Debug, Default)]
struct Tallies {
    probes: AtomicU64,
    probe_steps: AtomicU64,
    cas_retries: AtomicU64,
    waits: AtomicU64,
    wait_ns: AtomicU64,
    arena_full: AtomicU64,
}

/// A point-in-time view of the arena and its contention tallies — the
/// `/profile` contention table and the `icd_cache_*` `/metrics`
/// series. Wall-clock telemetry only; the values vary run to run and
/// must never be folded into deterministic artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Fixed arena capacity in slots.
    pub capacity: usize,
    /// Slots currently holding a published outcome.
    pub published: u64,
    /// Slots currently claimed by an in-flight computation.
    pub in_flight: u64,
    /// Slots currently abandoned (claim failed, re-claimable).
    pub abandoned: u64,
    /// Probe sequences started (one per `begin`/`lookup`/`store`).
    pub probes: u64,
    /// Total slots examined across all probe sequences; divide by
    /// [`probes`](SharedCacheStats::probes) for the mean probe length.
    pub probe_steps: u64,
    /// Slot-claim CAS attempts that lost a race and retried.
    pub cas_retries: u64,
    /// Acquisitions that parked on another worker's in-flight claim.
    pub waits: u64,
    /// Total wall-clock nanoseconds spent in those parks.
    pub wait_ns: u64,
    /// Probe sequences that gave up (probe limit or insertion cap) and
    /// fell through to the inner cache unmemoized.
    pub arena_full: u64,
}

/// A lock-free, fixed-arena, open-addressing memo in front of a shared
/// [`RunCache`], with in-flight claim tracking.
///
/// # Slot state machine
///
/// ```text
///            empty-CAS          tags written         publish
///   EMPTY ─────────────▶ RESERVED ─────────▶ CLAIMED ─────────▶ PUBLISHED (terminal)
///                                               │    ▲
///                                       abandon │    │ re-claim CAS
///                                               ▼    │
///                                             ABANDONED
/// ```
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use corpus::SharedCache;
/// use instantcheck::{CacheLease, MemoryRunCache, RunCache};
///
/// let inner = Arc::new(MemoryRunCache::new());
/// let shared = SharedCache::new(inner, 1024, None);
/// assert_eq!(shared.capacity(), 1024);
/// assert_eq!(shared.stats().published, 0);
/// ```
#[derive(Debug)]
pub struct SharedCache {
    inner: Arc<dyn RunCache>,
    slots: Box<[Slot]>,
    mask: usize,
    /// Slots ever moved off `EMPTY`; gates the insertion cap.
    occupied: AtomicUsize,
    tallies: Tallies,
    /// Deterministic memo counters; bindable once, at construction or
    /// later (an orchestrator attaches its registry after the owning
    /// [`Corpus`](crate::Corpus) was opened).
    registry: OnceLock<Arc<Registry>>,
    /// Wall-clock telemetry plane; bindable once, like `registry`.
    telemetry: OnceLock<Arc<Telemetry>>,
    /// Park/wake pair for in-flight waits. Waiting is the rare path
    /// (two workers racing one key); probes and publications never
    /// touch this lock.
    park: Mutex<()>,
    wake: Condvar,
}

/// What one probe sequence found.
enum Found<'a> {
    /// The key's slot, in the returned state (`CLAIMED`, `PUBLISHED`,
    /// or `ABANDONED` — never `EMPTY`/`RESERVED`).
    Slot(&'a Slot, u64),
    /// The key is absent and `claim` was set: the slot is now ours in
    /// `CLAIMED` state (tags written).
    Claimed(&'a Slot),
    /// The key is absent and either `claim` was unset, the probe limit
    /// was exhausted, or the arena is at the insertion cap.
    Absent,
}

impl SharedCache {
    /// Builds an arena of `capacity` slots (rounded up to a power of
    /// two, minimum 8) in front of `inner`. When `registry` is given,
    /// the memo counts `corpus.cache.memo_hits` and
    /// `corpus.cache.memo_misses` into the deterministic registry —
    /// totals that do not depend on worker interleaving, because the
    /// claim protocol computes every distinct key at most once.
    pub fn new(inner: Arc<dyn RunCache>, capacity: usize, registry: Option<Arc<Registry>>) -> Self {
        let capacity = capacity.next_power_of_two().max(8);
        let cache = SharedCache {
            inner,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: capacity - 1,
            occupied: AtomicUsize::new(0),
            tallies: Tallies::default(),
            registry: OnceLock::new(),
            telemetry: OnceLock::new(),
            park: Mutex::new(()),
            wake: Condvar::new(),
        };
        if let Some(registry) = registry {
            cache.bind_registry(&registry);
        }
        cache
    }

    /// The arena with the default capacity.
    pub fn with_default_capacity(
        inner: Arc<dyn RunCache>,
        registry: Option<Arc<Registry>>,
    ) -> Self {
        SharedCache::new(inner, DEFAULT_CACHE_CAPACITY, registry)
    }

    /// Attaches the wall-clock telemetry plane: every acquisition
    /// records its duration into [`CACHE_ACQUIRE_HISTOGRAM`], and
    /// in-flight waits additionally land in [`CACHE_WAIT_HISTOGRAM`].
    /// Both are pre-registered so `/metrics` exports them (at zero)
    /// before the first acquisition.
    #[must_use]
    pub fn with_telemetry(self, telemetry: Arc<Telemetry>) -> Self {
        self.bind_telemetry(&telemetry);
        self
    }

    /// Late-binds the deterministic memo-counter registry (see
    /// [`new`](SharedCache::new)). The first binding wins; later calls
    /// are no-ops, so an orchestrator can attach its registry to a
    /// cache that was constructed elsewhere.
    pub fn bind_registry(&self, registry: &Arc<Registry>) {
        let _ = self.registry.set(Arc::clone(registry));
    }

    /// Late-binds the wall-clock telemetry plane (see
    /// [`with_telemetry`](SharedCache::with_telemetry)). First binding
    /// wins. Both histograms are pre-registered so `/metrics` exports
    /// them (at zero) before the first acquisition.
    pub fn bind_telemetry(&self, telemetry: &Arc<Telemetry>) {
        telemetry.histogram(CACHE_ACQUIRE_HISTOGRAM);
        telemetry.histogram(CACHE_WAIT_HISTOGRAM);
        let _ = self.telemetry.set(Arc::clone(telemetry));
    }

    /// Fixed arena capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// A point-in-time stats snapshot (occupancy states are scanned
    /// live; tallies are monotonic).
    pub fn stats(&self) -> SharedCacheStats {
        let (mut published, mut in_flight, mut abandoned) = (0u64, 0u64, 0u64);
        for slot in self.slots.iter() {
            match slot.state.load(Ordering::Relaxed) {
                PUBLISHED => published += 1,
                CLAIMED | RESERVED => in_flight += 1,
                ABANDONED => abandoned += 1,
                _ => {}
            }
        }
        let t = &self.tallies;
        SharedCacheStats {
            capacity: self.slots.len(),
            published,
            in_flight,
            abandoned,
            probes: t.probes.load(Ordering::Relaxed),
            probe_steps: t.probe_steps.load(Ordering::Relaxed),
            cas_retries: t.cas_retries.load(Ordering::Relaxed),
            waits: t.waits.load(Ordering::Relaxed),
            wait_ns: t.wait_ns.load(Ordering::Relaxed),
            arena_full: t.arena_full.load(Ordering::Relaxed),
        }
    }

    fn count(&self, name: &str) {
        if let Some(reg) = self.registry.get() {
            reg.add(name, 1);
        }
    }

    /// Parks until `slot` leaves `CLAIMED`, tallying the wait. The
    /// publisher/abandoner takes the park lock (empty critical
    /// section) before notifying, so a waiter that checked the state
    /// under the lock can never miss the wake; the timeout is pure
    /// defense in depth.
    fn wait_for_publication(&self, slot: &Slot) {
        let start = Instant::now();
        let mut guard = self.park.lock().unwrap();
        while slot.state.load(Ordering::Acquire) == CLAIMED {
            let (g, _) = self
                .wake
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
            guard = g;
        }
        drop(guard);
        let wait = start.elapsed();
        self.tallies.waits.fetch_add(1, Ordering::Relaxed);
        self.tallies
            .wait_ns
            .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        if let Some(t) = self.telemetry.get() {
            t.record_wait(CACHE_WAIT_HISTOGRAM, wait);
        }
    }

    /// Wakes every parked waiter. Taking (and immediately dropping)
    /// the park lock orders this thread's state store before any
    /// waiter's under-lock state check — the classic no-lost-wakeup
    /// handshake.
    fn notify(&self) {
        drop(self.park.lock().unwrap());
        self.wake.notify_all();
    }

    /// The shared probe sequence: linear probing from the fingerprint's
    /// home slot, at most [`PROBE_LIMIT`] steps. `claim` asks for an
    /// empty (or matching-abandoned) slot to be CAS-claimed for the
    /// caller; `wait` parks on a matching in-flight claim instead of
    /// returning it.
    ///
    /// Memory ordering: state loads are `Acquire`, pairing with the
    /// `Release` state stores in [`claim_slot`](Self::claim_slot),
    /// [`publish`](Self::publish), and [`Self::abandon`], so fingerprint
    /// tags (written before the `CLAIMED` release) and published values
    /// (written before the `PUBLISHED` release) are visible to any
    /// thread that observed the state.
    fn probe(&self, lo: u64, hi: u64, claim: bool, wait: bool) -> Found<'_> {
        let t = &self.tallies;
        t.probes.fetch_add(1, Ordering::Relaxed);
        let start = (lo ^ hi) as usize & self.mask;
        for i in 0..PROBE_LIMIT.min(self.slots.len()) {
            t.probe_steps.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[(start + i) & self.mask];
            loop {
                match slot.state.load(Ordering::Acquire) {
                    EMPTY => {
                        if !claim {
                            // An empty slot proves the key is nowhere
                            // in its probe sequence.
                            return Found::Absent;
                        }
                        if self.occupied.load(Ordering::Relaxed) >= insert_cap(self.slots.len()) {
                            // Insertion cap: the key is absent and may
                            // not claim a slot — an arena-full fallback.
                            t.arena_full.fetch_add(1, Ordering::Relaxed);
                            return Found::Absent;
                        }
                        match self.claim_slot(slot, lo, hi) {
                            true => return Found::Claimed(slot),
                            false => {
                                // Lost the empty-CAS; re-examine the
                                // slot under its new owner.
                                t.cas_retries.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    }
                    RESERVED => {
                        // The tag-write window of another thread's
                        // claim: a few instructions. Spin through it.
                        std::hint::spin_loop();
                        continue;
                    }
                    state => {
                        // Tags are frozen from CLAIMED onward, so this
                        // comparison is race-free without any lock.
                        if slot.fp_lo.load(Ordering::Relaxed) != lo
                            || slot.fp_hi.load(Ordering::Relaxed) != hi
                        {
                            break; // other key's slot — next probe step
                        }
                        match state {
                            PUBLISHED => return Found::Slot(slot, PUBLISHED),
                            ABANDONED if claim => {
                                if slot
                                    .state
                                    .compare_exchange(
                                        ABANDONED,
                                        CLAIMED,
                                        Ordering::AcqRel,
                                        Ordering::Acquire,
                                    )
                                    .is_ok()
                                {
                                    return Found::Claimed(slot);
                                }
                                t.cas_retries.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            ABANDONED => return Found::Slot(slot, ABANDONED),
                            CLAIMED if wait => {
                                self.wait_for_publication(slot);
                                continue;
                            }
                            _ => return Found::Slot(slot, CLAIMED),
                        }
                    }
                }
            }
        }
        t.arena_full.fetch_add(1, Ordering::Relaxed);
        Found::Absent
    }

    /// CAS-claims an empty slot and freezes the fingerprint tags.
    /// Returns `false` if another thread won the slot. The `RESERVED`
    /// micro-state covers the tag writes; the `Release` store of
    /// `CLAIMED` publishes them to every `Acquire` prober.
    fn claim_slot(&self, slot: &Slot, lo: u64, hi: u64) -> bool {
        if slot
            .state
            .compare_exchange(EMPTY, RESERVED, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        self.occupied.fetch_add(1, Ordering::Relaxed);
        slot.fp_lo.store(lo, Ordering::Relaxed);
        slot.fp_hi.store(hi, Ordering::Relaxed);
        slot.state.store(CLAIMED, Ordering::Release);
        true
    }

    /// Publishes `run` into a slot this thread holds in `CLAIMED`
    /// state (or just claimed for direct insertion) and wakes waiters.
    /// The value is set before the `Release` store of `PUBLISHED`, so
    /// any prober that observes the state also observes the value.
    fn publish(&self, slot: &Slot, run: &Arc<CachedRun>) {
        let _ = slot.value.set(Arc::clone(run));
        slot.state.store(PUBLISHED, Ordering::Release);
        self.notify();
    }

    /// Installs a traced `run` as the upgrade of a published traceless
    /// entry. Trace presence is terminal, so the one-shot cell
    /// suffices; losing the `set` race just means another tracing
    /// campaign got there first with identical bytes.
    fn try_upgrade(&self, slot: &Slot, run: &Arc<CachedRun>) {
        if run.sim_trace.is_some()
            && slot.value.get().is_some_and(|v| v.sim_trace.is_none())
            && slot.upgrade.set(Arc::clone(run)).is_ok()
        {
            self.count("corpus.cache.upgrades");
        }
    }

    /// A non-claiming memo probe by precomputed fingerprint — the
    /// [`Corpus`](crate::Corpus) facade's hot path, which computes the
    /// key's tokens and fingerprint exactly once and hands them to
    /// each layer. Counting matches [`RunCache::lookup`]: a published
    /// slot is a memo hit, anything else a memo miss.
    pub(crate) fn memo_probe(&self, fp: u128) -> Option<Arc<CachedRun>> {
        let (lo, hi) = (fp as u64, (fp >> 64) as u64);
        match self.probe(lo, hi, false, false) {
            Found::Slot(slot, PUBLISHED) => {
                self.count("corpus.cache.memo_hits");
                slot.best()
            }
            _ => {
                self.count("corpus.cache.memo_misses");
                None
            }
        }
    }

    /// Warms the arena with a run the backend just served, so the next
    /// lookup of `fp` stays in memory — the publish half of the
    /// miss-fallthrough in [`RunCache::lookup`].
    pub(crate) fn memo_warm(&self, fp: u128, run: &Arc<CachedRun>) {
        let (lo, hi) = (fp as u64, (fp >> 64) as u64);
        if let Found::Claimed(slot) = self.probe(lo, hi, true, false) {
            self.publish(slot, run);
        }
    }

    /// Records the acquire duration of one `begin` into telemetry.
    fn record_acquire(&self, start: Instant) {
        if let Some(t) = self.telemetry.get() {
            t.record_wait(CACHE_ACQUIRE_HISTOGRAM, start.elapsed());
        }
    }
}

impl RunCache for SharedCache {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        // Non-claiming, non-waiting probe: a plain lookup has no claim
        // discipline, so an in-flight key just reads as a miss.
        let fp = fingerprint_key(key);
        if let Some(hit) = self.memo_probe(fp) {
            return Some(hit);
        }
        let fetched = self.inner.lookup(key)?;
        // Warm the arena so the next lookup stays in memory.
        self.memo_warm(fp, &fetched);
        Some(fetched)
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        // Write-through first: the inner store stays the source of
        // truth and is durable before the memo serves the entry back.
        self.inner.store(key, run);
        let fp = fingerprint_key(key);
        let (lo, hi) = (fp as u64, (fp >> 64) as u64);
        match self.probe(lo, hi, true, false) {
            // The common case: this thread's claim from `begin`.
            Found::Slot(slot, CLAIMED) | Found::Claimed(slot) => self.publish(slot, run),
            // Re-store over a published entry: only meaningful as a
            // traced upgrade of a traceless value (the checker
            // recomputes such entries under a tracing sink).
            Found::Slot(slot, PUBLISHED) => self.try_upgrade(slot, run),
            // Abandoned-but-unclaimable or arena-full: the write-through
            // above already preserved the outcome.
            _ => {}
        }
    }

    fn begin(&self, key: &RunKey) -> CacheLease {
        let start = Instant::now();
        let fp = fingerprint_key(key);
        let (lo, hi) = (fp as u64, (fp >> 64) as u64);
        // Claiming, waiting probe: the only outcomes are a published
        // value or ownership of the key's computation.
        let lease = match self.probe(lo, hi, true, true) {
            Found::Slot(slot, PUBLISHED) => {
                self.count("corpus.cache.memo_hits");
                match slot.best() {
                    Some(run) => CacheLease::Hit(run),
                    // Unreachable by construction (value precedes
                    // PUBLISHED); degrade to a computing miss.
                    None => CacheLease::Compute { claimed: false },
                }
            }
            Found::Claimed(slot) => {
                self.count("corpus.cache.memo_misses");
                // One disk read per key, under the claim, so waiters
                // block on the I/O once instead of all issuing it.
                match self.inner.lookup(key) {
                    Some(fetched) => {
                        self.publish(slot, &fetched);
                        CacheLease::Hit(fetched)
                    }
                    None => CacheLease::Compute { claimed: true },
                }
            }
            _ => {
                // Arena full (or a stuck abandoned slot): uncached
                // compute, deduplicated only by the inner store.
                self.count("corpus.cache.memo_misses");
                match self.inner.lookup(key) {
                    Some(fetched) => CacheLease::Hit(fetched),
                    None => CacheLease::Compute { claimed: false },
                }
            }
        };
        self.record_acquire(start);
        lease
    }

    fn abandon(&self, key: &RunKey) {
        let fp = fingerprint_key(key);
        let (lo, hi) = (fp as u64, (fp >> 64) as u64);
        if let Found::Slot(slot, CLAIMED) = self.probe(lo, hi, false, false) {
            if slot
                .state
                .compare_exchange(CLAIMED, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.notify();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Barrier};

    use adhash::HashSum;
    use instantcheck::{CheckpointRecord, MemoryRunCache, RunHashes, Scheme};
    use tsim::{CheckpointKind, SwitchPolicy};

    use super::*;

    fn key(seed: u64) -> RunKey {
        RunKey {
            workload: "shared-test".into(),
            scheme: Scheme::HwInc,
            seed,
            lib_seed: 42,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1_000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn run(digest: u64) -> Arc<CachedRun> {
        Arc::new(CachedRun {
            hashes: RunHashes {
                checkpoints: vec![CheckpointRecord {
                    kind: CheckpointKind::End,
                    hash: HashSum::from_raw(digest),
                }],
                output_digest: digest,
                extra_instr: 1,
                stores: 2,
                hash_updates: 3,
                cache: None,
            },
            steps: 10,
            native_instr: 20,
            zero_fill_instr: 5,
            alloc_log: None,
            sim_trace: None,
        })
    }

    /// A tiny deterministic PRNG so the stress schedules are seeded and
    /// reproducible, not time-dependent.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    #[test]
    fn begin_store_round_trips_through_the_arena() {
        let cache = SharedCache::new(Arc::new(MemoryRunCache::new()), 64, None);
        let k = key(1);
        match cache.begin(&k) {
            CacheLease::Compute { claimed } => assert!(claimed, "empty arena grants the claim"),
            CacheLease::Hit(_) => panic!("empty cache cannot hit"),
        }
        cache.store(&k, &run(7));
        match cache.begin(&k) {
            CacheLease::Hit(hit) => assert_eq!(hit.hashes.output_digest, 7),
            CacheLease::Compute { .. } => panic!("published entry must hit"),
        }
        assert_eq!(cache.stats().published, 1);
        assert!(cache.lookup(&k).is_some());
    }

    #[test]
    fn inner_hits_publish_into_the_arena_under_the_claim() {
        let inner = Arc::new(MemoryRunCache::new());
        inner.store(&key(5), &run(50));
        let cache = SharedCache::new(inner.clone(), 64, None);
        // First begin finds the entry in the inner store and publishes
        // it, so it reads as a Hit without any checker round trip.
        match cache.begin(&key(5)) {
            CacheLease::Hit(hit) => assert_eq!(hit.hashes.output_digest, 50),
            CacheLease::Compute { .. } => panic!("inner entry must surface as a hit"),
        }
        assert_eq!(cache.stats().published, 1, "inner hit published to arena");
    }

    #[test]
    fn abandon_wakes_a_waiter_that_then_recomputes() {
        let cache = Arc::new(SharedCache::new(Arc::new(MemoryRunCache::new()), 64, None));
        let k = key(9);
        match cache.begin(&k) {
            CacheLease::Compute { claimed: true } => {}
            other => panic!("expected a fresh claim, got {other:?}"),
        }
        let waiter = {
            let cache = Arc::clone(&cache);
            let k = k.clone();
            std::thread::spawn(move || cache.begin(&k))
        };
        // Give the waiter time to park on the in-flight claim, then
        // fail the computation. The waiter must wake, re-claim, and get
        // to compute — never hang, never see a phantom value.
        std::thread::sleep(Duration::from_millis(20));
        cache.abandon(&k);
        match waiter.join().unwrap() {
            CacheLease::Compute { claimed } => assert!(claimed, "waiter re-claims after abandon"),
            CacheLease::Hit(_) => panic!("abandoned claim must not read as a hit"),
        }
        assert!(cache.stats().waits >= 1, "the wait was tallied");
    }

    /// The tentpole correctness property, raced for real: many workers
    /// begin/compute/store the same keys concurrently, and the claim
    /// protocol must yield exactly one computation per key with every
    /// reader observing identical bytes.
    #[test]
    fn racing_workers_compute_each_key_exactly_once() {
        const WORKERS: usize = 8;
        const KEYS: u64 = 16;
        for trial in 0..4u64 {
            let cache = Arc::new(SharedCache::new(Arc::new(MemoryRunCache::new()), 256, None));
            let computed = Arc::new(AtomicU64::new(0));
            let barrier = Arc::new(Barrier::new(WORKERS));
            let mut handles = Vec::new();
            for w in 0..WORKERS {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let barrier = Arc::clone(&barrier);
                handles.push(std::thread::spawn(move || {
                    let mut rng = trial * 1_000 + w as u64 + 1;
                    // Each worker visits every key in a seeded shuffle,
                    // so claim races hit different keys per worker.
                    let mut order: Vec<u64> = (0..KEYS).collect();
                    for i in (1..order.len()).rev() {
                        order.swap(i, (xorshift(&mut rng) % (i as u64 + 1)) as usize);
                    }
                    barrier.wait();
                    let mut seen = Vec::new();
                    for seed in order {
                        let k = key(seed);
                        match cache.begin(&k) {
                            CacheLease::Hit(hit) => {
                                seen.push((seed, hit.hashes.output_digest));
                            }
                            CacheLease::Compute { claimed } => {
                                assert!(claimed, "arena is far from full");
                                computed.fetch_add(1, Ordering::Relaxed);
                                // The "simulation": deterministic in the
                                // key, as the checker's would be.
                                cache.store(&k, &run(seed * 31 + 7));
                                seen.push((seed, seed * 31 + 7));
                            }
                        }
                    }
                    seen
                }));
            }
            let mut observed: Vec<(u64, u64)> = Vec::new();
            for h in handles {
                observed.extend(h.join().unwrap());
            }
            assert_eq!(
                computed.load(Ordering::Relaxed),
                KEYS,
                "trial {trial}: every key computed exactly once across {WORKERS} workers"
            );
            for (seed, digest) in observed {
                assert_eq!(
                    digest,
                    seed * 31 + 7,
                    "trial {trial}: every reader observed the unique computation's bytes"
                );
            }
            let stats = cache.stats();
            assert_eq!(stats.published, KEYS);
            assert_eq!(stats.in_flight, 0);
            assert_eq!(stats.abandoned, 0);
        }
    }

    /// Claim/abandon raced with publication: a seeded subset of winners
    /// abandon instead of storing (the failed-run path). No waiter may
    /// hang, every key must still end published with consistent bytes,
    /// and failures must never be served from the cache.
    #[test]
    fn seeded_abandon_storm_never_strands_a_waiter() {
        const WORKERS: usize = 6;
        const KEYS: u64 = 8;
        for trial in 0..6u64 {
            let cache = Arc::new(SharedCache::new(Arc::new(MemoryRunCache::new()), 128, None));
            let barrier = Arc::new(Barrier::new(WORKERS));
            let mut handles = Vec::new();
            for w in 0..WORKERS {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                handles.push(std::thread::spawn(move || {
                    let mut rng = trial * 7_777 + w as u64 + 1;
                    barrier.wait();
                    for seed in 0..KEYS {
                        let k = key(seed);
                        // Retry until this worker observes the key's
                        // published value — mirroring the checker's
                        // attempt loop around a failed run.
                        loop {
                            match cache.begin(&k) {
                                CacheLease::Hit(hit) => {
                                    assert_eq!(hit.hashes.output_digest, seed + 100);
                                    break;
                                }
                                CacheLease::Compute { claimed } => {
                                    assert!(claimed);
                                    if xorshift(&mut rng).is_multiple_of(3) {
                                        // A failed run: abandon, retry.
                                        cache.abandon(&k);
                                        std::thread::yield_now();
                                    } else {
                                        cache.store(&k, &run(seed + 100));
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let stats = cache.stats();
            assert_eq!(stats.published, KEYS, "trial {trial}: all keys published");
            assert_eq!(stats.in_flight, 0, "trial {trial}: no claim leaked");
        }
    }

    #[test]
    fn arena_full_degrades_to_inner_lookups_not_errors() {
        // Capacity 8 with a 3/4 insertion cap: only 6 keys get slots.
        let inner = Arc::new(MemoryRunCache::new());
        let cache = SharedCache::new(inner.clone(), 8, None);
        for seed in 0..32 {
            let k = key(seed);
            match cache.begin(&k) {
                CacheLease::Compute { .. } => cache.store(&k, &run(seed)),
                CacheLease::Hit(_) => panic!("cold keys cannot hit"),
            }
        }
        // Every key still round-trips: memoized ones from the arena,
        // the rest straight from the inner store.
        for seed in 0..32 {
            match cache.begin(&key(seed)) {
                CacheLease::Hit(hit) => assert_eq!(hit.hashes.output_digest, seed),
                CacheLease::Compute { .. } => panic!("stored key {seed} must hit"),
            }
        }
        let stats = cache.stats();
        assert!(stats.published <= 6, "insertion cap held: {stats:?}");
        assert!(stats.arena_full > 0, "fallbacks were tallied");
    }

    #[test]
    fn traced_store_upgrades_a_traceless_entry() {
        let cache = SharedCache::new(Arc::new(MemoryRunCache::new()), 64, None);
        let k = key(3);
        assert!(matches!(
            cache.begin(&k),
            CacheLease::Compute { claimed: true }
        ));
        cache.store(&k, &run(30));
        // A tracing campaign recomputes the entry and re-stores it with
        // the trace attached; subsequent readers get the traced value.
        let traced = Arc::new(CachedRun {
            sim_trace: Some(Vec::new()),
            ..(*run(30)).clone()
        });
        cache.store(&k, &traced);
        match cache.begin(&k) {
            CacheLease::Hit(hit) => assert!(hit.sim_trace.is_some(), "upgrade visible"),
            CacheLease::Compute { .. } => panic!("published entry must hit"),
        }
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let cache = SharedCache::new(Arc::new(MemoryRunCache::new()), 100, None);
        assert_eq!(cache.capacity(), 128);
        let tiny = SharedCache::new(Arc::new(MemoryRunCache::new()), 0, None);
        assert_eq!(tiny.capacity(), 8);
    }
}
