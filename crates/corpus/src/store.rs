//! The log-structured on-disk run store.
//!
//! Layout under the root directory:
//!
//! ```text
//! <root>/format                  "icseg 1" — the store's format marker
//! <root>/segments/seg-NNNNNNNN.icseg   sealed, immutable segments
//! <root>/segments/seg-NNNNNNNN.open    the one active segment
//! <root>/quarantine/             corrupt records and torn tails,
//!                                preserved as .bad files for autopsy
//! <root>/baselines/              named campaign baselines (JSON)
//! ```
//!
//! Records are `icseg-v1` frames (see [`crate::segment`]) whose payload
//! is a complete `icorpus-v1` entry, so the RunKey fingerprints, entry
//! checksums, and corruption classes of the one-file-per-run store are
//! preserved exactly — only the shape on disk changed. The engine
//! never trusts a damaged record: any read that fails the frame
//! checksum, entry magic/version/length/checksum, or key check
//! quarantines the record (the bytes move to `quarantine/`, the
//! fingerprint leaves the index) and reports a miss, which makes the
//! checker recompute and re-append the run. Records behind or ahead of
//! a bad one are untouched — corruption never poisons neighbors.
//!
//! The in-memory index is built lazily: opening a store only checks the
//! format marker, and the segment scan runs on the first lookup or
//! append, with its duration recorded in the
//! [`CORPUS_OPEN_HISTOGRAM`] telemetry histogram. A write-only
//! recording campaign on a fresh directory therefore pays no scan at
//! all.

use std::fs;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use instantcheck::{CachedRun, RunCache, RunKey};
use obs::{Registry, Telemetry};

use crate::compact::{enforce_size_bound, maybe_compact};
use crate::entry::{decode_entry_for, encode_entry, Corruption};
use crate::error::CorpusError;
use crate::fingerprint::{fingerprint_fields, fingerprint_key};
use crate::index::{format_marker, CrashPoints, LogInner};
use crate::segment::encode_record;

/// Telemetry histogram fed with the wall-clock duration of each lazy
/// index build (the segment scan). One sample per store instance per
/// process — a fat sample here means the log is large or cold on disk.
pub const CORPUS_OPEN_HISTOGRAM: &str = "icd.corpus.open";

/// Telemetry histogram fed with the wall-clock duration of each inline
/// compaction (victim selection, live-record rewrite, source deletion).
/// Empty until the log accumulates enough garbage to be worth
/// rewriting.
pub const CORPUS_COMPACT_HISTOGRAM: &str = "icd.corpus.compact";

/// A point-in-time view of the log engine: segment counts, byte
/// accounting, and maintenance tallies — the `icd_corpus_*` `/metrics`
/// series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Segments on disk (sealed + the active one).
    pub segments: u64,
    /// Live (indexed) records.
    pub live_records: u64,
    /// Bytes of live records.
    pub live_bytes: u64,
    /// Bytes of superseded or quarantined records awaiting compaction.
    pub garbage_bytes: u64,
    /// Total bytes across all segments.
    pub total_bytes: u64,
    /// Inline compactions run by this instance.
    pub compactions: u64,
    /// Live records rewritten by those compactions.
    pub compacted_records: u64,
    /// Live records dropped by size-bound eviction.
    pub evicted_records: u64,
    /// Nanoseconds the lazy index build took (0 until it runs).
    pub open_ns: u64,
}

/// The log-structured store: segment files, a lazily built in-memory
/// fingerprint index, inline compaction, and size-bounded eviction.
/// Private to the crate — every consumer goes through
/// [`Corpus`](crate::Corpus).
#[derive(Debug)]
pub(crate) struct LogStore {
    root: PathBuf,
    segment_bytes: u64,
    max_bytes: Option<u64>,
    registry: Arc<Registry>,
    telemetry: OnceLock<Arc<Telemetry>>,
    crash: CrashPoints,
    inner: Mutex<Option<LogInner>>,
    compactions: AtomicU64,
    compacted_records: AtomicU64,
    evicted_records: AtomicU64,
    open_ns: AtomicU64,
}

impl LogStore {
    /// Opens (creating if needed) a log store rooted at `root`. Cheap:
    /// directory creation and a marker check; the segment scan is
    /// deferred to first use.
    pub(crate) fn open(
        root: &Path,
        segment_bytes: u64,
        max_bytes: Option<u64>,
    ) -> Result<LogStore, CorpusError> {
        let mk = |e: io::Error| CorpusError::Open {
            dir: root.to_path_buf(),
            source: e,
        };
        fs::create_dir_all(root.join("segments")).map_err(mk)?;
        fs::create_dir_all(root.join("quarantine")).map_err(mk)?;
        fs::create_dir_all(root.join("baselines")).map_err(mk)?;
        let marker = root.join("format");
        let expected = format_marker();
        match fs::read_to_string(&marker) {
            Ok(found) if found == expected => {}
            Ok(found) => {
                return Err(CorpusError::FormatMismatch {
                    dir: root.to_path_buf(),
                    found: found.trim_end().to_owned(),
                    expected: expected.trim_end().to_owned(),
                });
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::write(&marker, &expected).map_err(mk)?;
            }
            Err(e) => return Err(mk(e)),
        }
        Ok(LogStore {
            root: root.to_path_buf(),
            segment_bytes: segment_bytes.max(4096),
            max_bytes,
            registry: Arc::new(Registry::new()),
            telemetry: OnceLock::new(),
            crash: CrashPoints::from_env(),
            inner: Mutex::new(None),
            compactions: AtomicU64::new(0),
            compacted_records: AtomicU64::new(0),
            evicted_records: AtomicU64::new(0),
            open_ns: AtomicU64::new(0),
        })
    }

    pub(crate) fn root(&self) -> &Path {
        &self.root
    }

    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Attaches the wall-clock telemetry plane (index-build and
    /// compaction histograms). First binding wins.
    pub(crate) fn bind_telemetry(&self, telemetry: &Arc<Telemetry>) {
        telemetry.histogram(CORPUS_OPEN_HISTOGRAM);
        telemetry.histogram(CORPUS_COMPACT_HISTOGRAM);
        let _ = self.telemetry.set(Arc::clone(telemetry));
    }

    /// Runs `f` over the log state, building the index first if this
    /// is the store's first use.
    fn with_inner<R>(&self, f: impl FnOnce(&mut LogInner) -> R) -> Result<R, CorpusError> {
        let mut guard = self.inner.lock().unwrap();
        if guard.is_none() {
            let start = Instant::now();
            let (inner, report) =
                LogInner::open(&self.root.join("segments")).map_err(CorpusError::Index)?;
            let took = start.elapsed();
            self.open_ns
                .store(took.as_nanos() as u64, Ordering::Relaxed);
            if let Some(t) = self.telemetry.get() {
                t.record_wait(CORPUS_OPEN_HISTOGRAM, took);
            }
            for tail in &report.torn {
                // A torn tail is the truncation class: a crashed append
                // left a half-written record behind.
                self.registry.add("corpus.quarantined", 1);
                self.registry.add("corpus.quarantined.truncated", 1);
                self.write_bad_file(
                    &format!("torn-seg-{:08}-{}", tail.seg, tail.offset),
                    &tail.bytes,
                );
            }
            *guard = Some(inner);
        }
        Ok(f(guard.as_mut().expect("just built")))
    }

    /// Preserves corrupt bytes under `quarantine/<stem>.<n>.bad`.
    /// Best-effort: quarantine exists for autopsy, not correctness —
    /// the record is already out of the index.
    fn write_bad_file(&self, stem: &str, bytes: &[u8]) {
        for attempt in 0u32..64 {
            let dest = self
                .root
                .join("quarantine")
                .join(format!("{stem}.{attempt}.bad"));
            if dest.exists() {
                continue;
            }
            let _ = fs::write(&dest, bytes);
            return;
        }
    }

    /// Quarantines one record: bytes move aside, the fingerprint
    /// leaves the index (its bytes become garbage), the per-class
    /// counter bumps.
    fn quarantine(&self, fp: u128, bytes: &[u8], why: &Corruption) {
        self.registry.add("corpus.quarantined", 1);
        self.registry
            .add(&format!("corpus.quarantined.{}", why.label()), 1);
        self.write_bad_file(&format!("{fp:032x}"), bytes);
        let _ = self.with_inner(|inner| inner.mark_dead(fp));
    }

    /// Live record count (builds the index if needed).
    pub(crate) fn run_count(&self) -> usize {
        self.with_inner(|inner| inner.live_records()).unwrap_or(0)
    }

    /// Engine statistics. Cheap once the index exists.
    pub(crate) fn log_stats(&self) -> LogStats {
        let (segments, live_records, live_bytes, garbage_bytes, total_bytes) = self
            .with_inner(|inner| {
                let live_bytes = inner.segments.values().map(|s| s.live_bytes).sum();
                let garbage_bytes = inner.segments.values().map(|s| s.garbage_bytes).sum();
                (
                    inner.segments.len() as u64,
                    inner.live_records() as u64,
                    live_bytes,
                    garbage_bytes,
                    inner.total_bytes(),
                )
            })
            .unwrap_or_default();
        LogStats {
            segments,
            live_records,
            live_bytes,
            garbage_bytes,
            total_bytes,
            compactions: self.compactions.load(Ordering::Relaxed),
            compacted_records: self.compacted_records.load(Ordering::Relaxed),
            evicted_records: self.evicted_records.load(Ordering::Relaxed),
            open_ns: self.open_ns.load(Ordering::Relaxed),
        }
    }
}

impl LogStore {
    /// The lookup path proper, with the key's fingerprint and canonical
    /// tokens already materialized — one `tokens()` call serves the
    /// memo probe above this store, the index probe, and the stored-key
    /// comparison. The record is verified in a single decode pass
    /// ([`decode_entry_for`]): the entry's own header checksum covers
    /// the body, the structural header checks cover the rest, and the
    /// field-for-field key comparison subsumes the fingerprint
    /// recomputation — a fingerprint collision (or a record compacted
    /// to the wrong address) must never read as a hit.
    pub(crate) fn lookup_prepared(
        &self,
        fp: u128,
        tokens: &[(&'static str, &str)],
    ) -> Option<Arc<CachedRun>> {
        // Locate under the lock, read outside it: concurrent lookups
        // share nothing but the index probe and a positional read.
        let located = self.with_inner(|inner| inner.locate(fp)).ok().flatten();
        let Some((file, loc)) = located else {
            self.registry.add("corpus.misses", 1);
            return None;
        };
        // Each thread reuses one payload buffer across lookups, so the
        // hot path performs no heap allocation before the decoded run.
        thread_local! {
            static PAYLOAD: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        PAYLOAD.with(|buf| {
            let mut payload = buf.borrow_mut();
            payload.resize(loc.payload_len as usize, 0);
            if file
                .read_exact_at(&mut payload, loc.payload_offset)
                .is_err()
            {
                self.quarantine(
                    fp,
                    &payload,
                    &Corruption::Truncated {
                        expected: loc.payload_len as usize,
                        found: 0,
                    },
                );
                self.registry.add("corpus.misses", 1);
                return None;
            }
            let why = match std::str::from_utf8(&payload) {
                Err(_) => Corruption::Malformed("payload is not utf-8".into()),
                Ok(text) => match decode_entry_for(text, fp, tokens) {
                    Ok(run) => {
                        self.registry.add("corpus.hits", 1);
                        return Some(Arc::new(run));
                    }
                    Err(why) => why,
                },
            };
            self.quarantine(fp, &payload, &why);
            self.registry.add("corpus.misses", 1);
            None
        })
    }
}

impl RunCache for LogStore {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        key.with_tokens(|tokens| self.lookup_prepared(fingerprint_fields(tokens), tokens))
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        let text = encode_entry(key, run);
        let fp = fingerprint_key(key);
        let record = encode_record(fp, text.as_bytes());
        // The API is infallible: a failed append is just a future miss.
        let appended = self.with_inner(|inner| -> io::Result<()> {
            inner.append(fp, &record, self.segment_bytes, &self.crash)?;
            let start = Instant::now();
            if let Some(out) = maybe_compact(inner, self.segment_bytes, &self.crash)? {
                self.compactions.fetch_add(1, Ordering::Relaxed);
                self.compacted_records
                    .fetch_add(out.rewritten, Ordering::Relaxed);
                self.registry.add("corpus.compactions", 1);
                self.registry
                    .add("corpus.compacted.bytes", out.reclaimed_bytes);
                if let Some(t) = self.telemetry.get() {
                    t.record_wait(CORPUS_COMPACT_HISTOGRAM, start.elapsed());
                }
            }
            if let Some(max) = self.max_bytes {
                let dropped = enforce_size_bound(inner, max)?;
                if dropped > 0 {
                    self.evicted_records.fetch_add(dropped, Ordering::Relaxed);
                    self.registry.add("corpus.evicted", dropped);
                }
            }
            Ok(())
        });
        if matches!(appended, Ok(Ok(()))) {
            self.registry.add("corpus.stores", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::HashSum;
    use instantcheck::{CheckpointRecord, RunHashes, Scheme};
    use tsim::{CheckpointKind, SwitchPolicy};

    static SERIAL: AtomicU64 = AtomicU64::new(0);

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "corpus-log-{tag}-{}-{}",
            std::process::id(),
            SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key(seed: u64) -> RunKey {
        RunKey {
            workload: "store-test".into(),
            scheme: Scheme::HwInc,
            seed,
            lib_seed: 42,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1_000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn sample_run() -> CachedRun {
        CachedRun {
            hashes: RunHashes {
                checkpoints: vec![CheckpointRecord {
                    kind: CheckpointKind::End,
                    hash: HashSum::from_raw(0xdead_beef),
                }],
                output_digest: 99,
                extra_instr: 1,
                stores: 2,
                hash_updates: 3,
                cache: None,
            },
            steps: 10,
            native_instr: 20,
            zero_fill_instr: 5,
            alloc_log: None,
            sim_trace: None,
        }
    }

    fn open(dir: &Path) -> LogStore {
        LogStore::open(dir, crate::segment::DEFAULT_SEGMENT_BYTES, None).unwrap()
    }

    #[test]
    fn store_round_trips_and_counts() {
        let dir = tempdir("roundtrip");
        let store = open(&dir);
        let key = sample_key(1);
        assert!(store.lookup(&key).is_none());
        assert_eq!(store.registry().counter("corpus.misses").get(), 1);
        store.store(&key, &Arc::new(sample_run()));
        assert_eq!(store.registry().counter("corpus.stores").get(), 1);
        assert_eq!(store.run_count(), 1);
        let hit = store.lookup(&key).expect("stored entry readable");
        assert_eq!(hit.hashes.output_digest, 99);
        assert_eq!(store.registry().counter("corpus.hits").get(), 1);
        // A second instance over the same directory sees the entry.
        let reopened = open(&dir);
        assert!(reopened.lookup(&key).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_segments_rotate_and_reopen_cleanly() {
        let dir = tempdir("rotate");
        let store = LogStore::open(&dir, 4096, None).unwrap();
        for seed in 0..40 {
            store.store(&sample_key(seed), &Arc::new(sample_run()));
        }
        let stats = store.log_stats();
        assert!(stats.segments > 1, "4 KiB segments must rotate: {stats:?}");
        assert_eq!(stats.live_records, 40);
        let reopened = LogStore::open(&dir, 4096, None).unwrap();
        assert_eq!(reopened.run_count(), 40);
        for seed in 0..40 {
            assert!(reopened.lookup(&sample_key(seed)).is_some(), "seed {seed}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn superseding_stores_create_garbage_and_compaction_reclaims_it() {
        let dir = tempdir("compact");
        let store = LogStore::open(&dir, 4096, None).unwrap();
        // Re-store the same small key set until enough sealed garbage
        // accumulates that inline compaction triggers.
        for round in 0..40 {
            for seed in 0..8 {
                store.store(&sample_key(seed), &Arc::new(sample_run()));
            }
            if store.log_stats().compactions > 0 {
                let _ = round;
                break;
            }
        }
        let stats = store.log_stats();
        assert!(
            stats.compactions > 0,
            "compaction never triggered: {stats:?}"
        );
        assert_eq!(stats.live_records, 8, "compaction preserves the live set");
        for seed in 0..8 {
            assert!(store.lookup(&sample_key(seed)).is_some(), "seed {seed}");
        }
        // And the log is still clean on reopen.
        let reopened = LogStore::open(&dir, 4096, None).unwrap();
        assert_eq!(reopened.run_count(), 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_bound_evicts_oldest_segments() {
        let dir = tempdir("evict");
        let store = LogStore::open(&dir, 4096, Some(16 * 1024)).unwrap();
        for seed in 0..200 {
            store.store(&sample_key(seed), &Arc::new(sample_run()));
        }
        let stats = store.log_stats();
        assert!(
            stats.total_bytes <= 16 * 1024,
            "size bound enforced: {stats:?}"
        );
        assert!(stats.evicted_records > 0);
        // Old keys evicted (miss), newest keys still present.
        assert!(store.lookup(&sample_key(0)).is_none());
        assert!(store.lookup(&sample_key(199)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn old_one_file_per_run_store_is_refused_with_a_typed_error() {
        let dir = tempdir("migration");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("format"), "icorpus 1\n").unwrap();
        match LogStore::open(&dir, 1 << 20, None) {
            Err(CorpusError::FormatMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, "icorpus 1");
                assert_eq!(expected, "icseg 1");
            }
            other => panic!("expected FormatMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_key_at_an_address_is_quarantined_not_trusted() {
        let dir = tempdir("keycheck");
        let store = open(&dir);
        let a = sample_key(3);
        let b = sample_key(4);
        store.store(&a, &Arc::new(sample_run()));
        // Graft a's (internally consistent) payload under b's
        // fingerprint by appending a forged record to the active
        // segment, then reopen so the forgery is indexed.
        let text = encode_entry(&a, &Arc::new(sample_run()));
        let forged = encode_record(fingerprint_key(&b), text.as_bytes());
        let seg = fs::read_dir(dir.join("segments"))
            .unwrap()
            .flatten()
            .find(|e| e.file_name().to_string_lossy().ends_with(".open"))
            .unwrap()
            .path();
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&forged);
        fs::write(&seg, &bytes).unwrap();
        let store = open(&dir);
        assert!(store.lookup(&b).is_none());
        assert_eq!(store.registry().counter("corpus.quarantined").get(), 1);
        assert_eq!(
            store
                .registry()
                .counter("corpus.quarantined.malformed")
                .get(),
            1
        );
        assert!(store.lookup(&a).is_some(), "neighbor record unharmed");
        fs::remove_dir_all(&dir).unwrap();
    }
}
