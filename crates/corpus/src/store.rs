//! The on-disk, content-addressed run store.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use instantcheck::{CachedRun, RunCache, RunKey};
use obs::{Registry, Snapshot};

use crate::entry::{decode_entry, encode_entry, Corruption, FORMAT_VERSION, MAGIC};
use crate::fingerprint::fingerprint_key;

/// Distinguishes concurrently written temp files within one process.
static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A persistent, versioned, content-addressed store of run outcomes.
///
/// The layout under the root directory:
///
/// ```text
/// <root>/format            "icorpus 1" — the store's format marker
/// <root>/runs/<fp>.run     one entry per recorded run, addressed by
///                          the 128-bit key fingerprint (32 hex digits)
/// <root>/quarantine/       corrupt entries, moved aside with a .bad
///                          suffix so they can be inspected
/// <root>/baselines/        named campaign baselines (JSON)
/// ```
///
/// The store implements [`RunCache`], so it plugs straight into
/// [`CheckerConfig::with_run_cache`](instantcheck::CheckerConfig::with_run_cache).
/// It never trusts a damaged file: any entry that fails the magic,
/// version, length, checksum, or key check is quarantined and the
/// lookup reports a miss, which makes the checker recompute (and
/// re-store) the run.
///
/// # Example
///
/// ```
/// use corpus::CorpusStore;
///
/// let dir = std::env::temp_dir().join(format!("corpus-doc-{}", std::process::id()));
/// let store = CorpusStore::open(&dir).unwrap();
/// assert_eq!(store.run_count(), 0);
/// assert_eq!(store.hits(), 0);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct CorpusStore {
    root: PathBuf,
    registry: Arc<Registry>,
}

impl CorpusStore {
    /// Opens (creating if needed) a corpus rooted at `root`.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] if the directories cannot be created, or one of
    /// kind [`InvalidData`](io::ErrorKind::InvalidData) if the root
    /// holds a corpus of a different format version — an incompatible
    /// store is refused outright rather than silently misread.
    pub fn open(root: impl AsRef<Path>) -> io::Result<CorpusStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("runs"))?;
        fs::create_dir_all(root.join("quarantine"))?;
        fs::create_dir_all(root.join("baselines"))?;
        let marker = root.join("format");
        let expected = format!("{MAGIC} {FORMAT_VERSION}\n");
        match fs::read_to_string(&marker) {
            Ok(found) if found == expected => {}
            Ok(found) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "corpus at {} has format {:?}, this build reads {:?}",
                        root.display(),
                        found.trim_end(),
                        expected.trim_end()
                    ),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                fs::write(&marker, &expected)?;
            }
            Err(e) => return Err(e),
        }
        Ok(CorpusStore {
            root,
            registry: Arc::new(Registry::new()),
        })
    }

    /// The root directory this store reads and writes.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's private metrics registry. Counters:
    /// `corpus.hits`, `corpus.misses`, `corpus.stores`,
    /// `corpus.quarantined`, and `corpus.quarantined.<class>` per
    /// [`Corruption::label`]. Kept separate from any campaign registry
    /// so warm and cold campaigns report identical campaign metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A snapshot of the store's counters.
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Lookups satisfied from disk so far (this store instance).
    pub fn hits(&self) -> u64 {
        self.registry.counter("corpus.hits").get()
    }

    /// Lookups that found no trustworthy entry.
    pub fn misses(&self) -> u64 {
        self.registry.counter("corpus.misses").get()
    }

    /// Entries written by this store instance.
    pub fn stores(&self) -> u64 {
        self.registry.counter("corpus.stores").get()
    }

    /// Entries quarantined by this store instance.
    pub fn quarantined(&self) -> u64 {
        self.registry.counter("corpus.quarantined").get()
    }

    /// Number of run entries currently on disk.
    pub fn run_count(&self) -> usize {
        match fs::read_dir(self.root.join("runs")) {
            Ok(dir) => dir
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "run"))
                .count(),
            Err(_) => 0,
        }
    }

    /// The path a run with this key is stored at.
    pub fn run_path(&self, key: &RunKey) -> PathBuf {
        self.root
            .join("runs")
            .join(format!("{:032x}.run", fingerprint_key(key)))
    }

    /// The baselines directory (see
    /// [`CampaignBaseline`](crate::CampaignBaseline)).
    pub fn baselines_dir(&self) -> PathBuf {
        self.root.join("baselines")
    }

    /// Moves a corrupt entry into `quarantine/` under a unique `.bad`
    /// name and bumps the per-class counter.
    fn quarantine(&self, path: &Path, why: &Corruption) {
        self.registry.add("corpus.quarantined", 1);
        self.registry
            .add(&format!("corpus.quarantined.{}", why.label()), 1);
        let stem = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_owned());
        for attempt in 0u32.. {
            let dest = self
                .root
                .join("quarantine")
                .join(format!("{stem}.{attempt}.bad"));
            if dest.exists() {
                continue;
            }
            if fs::rename(path, &dest).is_ok() {
                return;
            }
            break;
        }
        // Rename failed (cross-device or racing deletion): just remove
        // the bad file so it cannot be trusted on the next lookup.
        let _ = fs::remove_file(path);
    }
}

impl RunCache for CorpusStore {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        let path = self.run_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.registry.add("corpus.misses", 1);
                return None;
            }
        };
        match decode_entry(&text) {
            Ok((tokens, run)) => {
                // The stored key must equal the requested one field for
                // field — a fingerprint collision (or a file copied to
                // the wrong address) must never read as a hit. The file
                // can also never hit at this address, so it is
                // quarantined like any other untrustworthy entry.
                let expected: Vec<(String, String)> = key
                    .tokens()
                    .into_iter()
                    .map(|(l, v)| (l.to_owned(), v))
                    .collect();
                if tokens == expected {
                    self.registry.add("corpus.hits", 1);
                    Some(Arc::new(run))
                } else {
                    self.quarantine(
                        &path,
                        &Corruption::Malformed("stored key does not match its address".into()),
                    );
                    self.registry.add("corpus.misses", 1);
                    None
                }
            }
            Err(why) => {
                self.quarantine(&path, &why);
                self.registry.add("corpus.misses", 1);
                None
            }
        }
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        let text = encode_entry(key, run);
        let path = self.run_path(key);
        let tmp = self.root.join("runs").join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        // Write-then-rename so a crashed writer leaves either the old
        // entry or a stray temp file, never a truncated entry at the
        // live address. The API is infallible: a failed store is just a
        // future miss.
        if fs::write(&tmp, &text).is_ok() {
            if fs::rename(&tmp, &path).is_ok() {
                self.registry.add("corpus.stores", 1);
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhash::HashSum;
    use instantcheck::{CheckpointRecord, RunHashes, Scheme};
    use tsim::{CheckpointKind, SwitchPolicy};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "corpus-store-{tag}-{}-{}",
            std::process::id(),
            TMP_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key(seed: u64) -> RunKey {
        RunKey {
            workload: "store-test".into(),
            scheme: Scheme::HwInc,
            seed,
            lib_seed: 42,
            switch: SwitchPolicy::SyncOnly,
            max_steps: 1_000,
            rounding: None,
            ignore_token: 0,
            fault_token: 0,
            cache_model: false,
            alloc_seed: None,
        }
    }

    fn sample_run() -> CachedRun {
        CachedRun {
            hashes: RunHashes {
                checkpoints: vec![CheckpointRecord {
                    kind: CheckpointKind::End,
                    hash: HashSum::from_raw(0xdead_beef),
                }],
                output_digest: 99,
                extra_instr: 1,
                stores: 2,
                hash_updates: 3,
                cache: None,
            },
            steps: 10,
            native_instr: 20,
            zero_fill_instr: 5,
            alloc_log: None,
            sim_trace: None,
        }
    }

    #[test]
    fn store_round_trips_and_counts() {
        let dir = tempdir("roundtrip");
        let store = CorpusStore::open(&dir).unwrap();
        let key = sample_key(1);
        assert!(store.lookup(&key).is_none());
        assert_eq!(store.misses(), 1);
        store.store(&key, &Arc::new(sample_run()));
        assert_eq!(store.stores(), 1);
        assert_eq!(store.run_count(), 1);
        let hit = store.lookup(&key).expect("stored entry readable");
        assert_eq!(hit.hashes.output_digest, 99);
        assert_eq!(store.hits(), 1);
        // A second instance over the same directory sees the entry.
        let reopened = CorpusStore::open(&dir).unwrap();
        assert!(reopened.lookup(&key).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_trusted() {
        let dir = tempdir("quarantine");
        let store = CorpusStore::open(&dir).unwrap();
        let key = sample_key(2);
        store.store(&key, &Arc::new(sample_run()));
        let path = store.run_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        // Flip one body byte: checksum failure.
        let flip = bytes.len() - 2;
        bytes[flip] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(store.lookup(&key).is_none());
        assert_eq!(store.quarantined(), 1);
        assert!(!path.exists(), "corrupt file moved aside");
        assert_eq!(
            fs::read_dir(dir.join("quarantine")).unwrap().count(),
            1,
            "quarantine holds the bad file"
        );
        // The address is free again: a re-store works and reads back.
        store.store(&key, &Arc::new(sample_run()));
        assert!(store.lookup(&key).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incompatible_format_marker_is_refused() {
        let dir = tempdir("format");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("format"), "icorpus 999\n").unwrap();
        let err = CorpusStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_key_at_an_address_is_a_miss() {
        let dir = tempdir("keycheck");
        let store = CorpusStore::open(&dir).unwrap();
        let a = sample_key(3);
        let b = sample_key(4);
        store.store(&a, &Arc::new(sample_run()));
        // Copy a's (internally consistent) entry to b's address; the
        // fingerprint check inside decode flags it as corruption.
        fs::copy(store.run_path(&a), store.run_path(&b)).unwrap();
        assert!(store.lookup(&b).is_none());
        assert_eq!(store.quarantined(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
