//! Order-independent fingerprints of labeled key fields.
//!
//! A corpus entry is addressed by a 128-bit fingerprint of its
//! [`RunKey`](instantcheck::RunKey)'s fields. Each `(label, value)`
//! field is hashed independently and the per-field hashes are combined
//! with a commutative operation (wrapping addition, twice with
//! independent seeds), so the fingerprint is a function of the *set* of
//! fields, not the order they were listed in. That makes the on-disk
//! addressing stable under refactors that reorder the key encoding — a
//! property the format's round-trip tests pin down.

use instantcheck::RunKey;

/// Seed of the low 64 fingerprint bits.
const LO_SEED: u64 = 0xc0f_9a5e_0000_0001;
/// Seed of the high 64 fingerprint bits (independent of [`LO_SEED`], so
/// the two halves never cancel together).
const HI_SEED: u64 = 0x5ee_dbee_f000_0002;

/// Plain FNV-1a — the checksum of entry bodies and record frames.
/// Public so offline tooling (and tests) can re-frame or audit segment
/// records without linking the whole engine.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(0, bytes)
}

/// FNV-1a over `bytes`, folded into `seed`.
fn fnv64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of one labeled field. The label and value are length-prefixed
/// by the `=` separator plus the seeded initial state, so `("ab", "c")`
/// and `("a", "bc")` hash differently.
fn field_hash(seed: u64, label: &str, value: &str) -> u64 {
    let mut h = fnv64_seeded(seed, label.as_bytes());
    h = fnv64_seeded(h, b"=");
    fnv64_seeded(h, value.as_bytes())
}

/// The order-independent 128-bit fingerprint of a set of labeled
/// fields.
///
/// # Example
///
/// ```
/// let a = corpus::fingerprint_fields(&[("x", "1"), ("y", "2")]);
/// let b = corpus::fingerprint_fields(&[("y", "2"), ("x", "1")]);
/// assert_eq!(a, b, "field order does not matter");
/// let c = corpus::fingerprint_fields(&[("x", "2"), ("y", "1")]);
/// assert_ne!(a, c, "values bind to their labels");
/// ```
pub fn fingerprint_fields(fields: &[(&str, &str)]) -> u128 {
    let mut lo = 0u64;
    let mut hi = 0u64;
    for (label, value) in fields {
        lo = lo.wrapping_add(field_hash(LO_SEED, label, value));
        hi = hi.wrapping_add(field_hash(HI_SEED, label, value));
    }
    (u128::from(hi)) << 64 | u128::from(lo)
}

/// The fingerprint a [`RunKey`] is stored under: its canonical
/// [`tokens`](RunKey::tokens) (which include the key-encoding version),
/// fingerprinted order-independently. Uses the key's stack-rendered
/// token form ([`RunKey::with_tokens`]), so fingerprinting allocates
/// nothing.
pub fn fingerprint_key(key: &RunKey) -> u128 {
    key.with_tokens(fingerprint_fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_fields_preserves_the_fingerprint() {
        let fields = [("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")];
        let base = fingerprint_fields(&fields);
        let mut rotated = fields;
        rotated.rotate_left(1);
        assert_eq!(base, fingerprint_fields(&rotated));
        let mut reversed = fields;
        reversed.reverse();
        assert_eq!(base, fingerprint_fields(&reversed));
    }

    #[test]
    fn any_field_change_moves_the_fingerprint() {
        let base = fingerprint_fields(&[("a", "1"), ("b", "2")]);
        assert_ne!(base, fingerprint_fields(&[("a", "1"), ("b", "3")]));
        assert_ne!(base, fingerprint_fields(&[("a", "1"), ("c", "2")]));
        assert_ne!(base, fingerprint_fields(&[("a", "1")]));
        assert_ne!(
            base,
            fingerprint_fields(&[("a", "1"), ("b", "2"), ("b", "2")])
        );
    }

    #[test]
    fn label_value_boundary_matters() {
        assert_ne!(
            fingerprint_fields(&[("ab", "c")]),
            fingerprint_fields(&[("a", "bc")])
        );
    }
}
