//! `corpus` — a persistent campaign corpus for InstantCheck.
//!
//! The checker distills every run of a determinism campaign into a
//! small, durable witness: its per-checkpoint State Hashes plus a
//! handful of counters. This crate makes those witnesses *persistent*:
//!
//! * [`CorpusStore`] is a versioned, content-addressed on-disk
//!   [`RunCache`](instantcheck::RunCache). Each completed run is filed
//!   under the 128-bit fingerprint of its
//!   [`RunKey`](instantcheck::RunKey) — everything that determines the
//!   run's hashes — so a warm campaign replays recorded outcomes
//!   through the checker's normal reduction path and produces reports,
//!   traces, and metrics byte-identical to a cold one. Damaged entries
//!   (bad magic, wrong version, truncation, checksum mismatch,
//!   malformed fields) are quarantined and recomputed, never trusted.
//! * [`CampaignBaseline`] freezes a known-good campaign's reference
//!   hashes and summary verdicts as a JSON artifact; a later campaign
//!   is compared against it and any change surfaces as a [`Drift`],
//!   localized to the first divergent checkpoint.
//! * [`SharedCache`] is a lock-free in-memory memo in front of any
//!   [`RunCache`](instantcheck::RunCache): a fixed-arena open-addressing
//!   table with CAS slot claiming and in-flight claim tracking, so
//!   concurrent campaign workers share discovered runs without taking a
//!   lock and never compute the same run twice.
//! * [`fingerprint_fields`] is the order-independent fingerprint both
//!   of the above are addressed by.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use corpus::CorpusStore;
//! use instantcheck::{Checker, CheckerConfig, Scheme};
//! use tsim::{ProgramBuilder, ValKind};
//!
//! let dir = std::env::temp_dir().join(format!("corpus-lib-doc-{}", std::process::id()));
//! let source = || {
//!     let mut b = ProgramBuilder::new(2);
//!     let g = b.global("G", ValKind::U64, 1);
//!     let lock = b.mutex();
//!     for t in 0..2u64 {
//!         b.thread(move |ctx| {
//!             ctx.lock(lock);
//!             let v = ctx.load(g.at(0));
//!             ctx.store(g.at(0), v + t + 1);
//!             ctx.unlock(lock);
//!         });
//!     }
//!     b.build()
//! };
//!
//! // Cold campaign: every run simulates, outcomes land on disk.
//! let store = Arc::new(CorpusStore::open(&dir).unwrap());
//! let cfg = CheckerConfig::new(Scheme::HwInc)
//!     .with_runs(4)
//!     .with_run_cache(store.clone(), "g-plus-t:full");
//! let cold = Checker::new(cfg.clone()).expect("valid config").check(source).unwrap();
//! assert_eq!(store.run_count(), 4);
//!
//! // Warm campaign — even in a fresh process — replays from disk.
//! let warm = Checker::new(cfg).expect("valid config").check(source).unwrap();
//! assert_eq!(cold, warm);
//! assert_eq!(store.hits(), 4);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod baseline;
mod entry;
mod fingerprint;
mod shared;
mod store;

pub use baseline::{CampaignBaseline, Drift};
pub use entry::{
    decode_entry, encode_entry, kind_token, parse_kind, Corruption, FORMAT_VERSION, MAGIC,
};
pub use fingerprint::{fingerprint_fields, fingerprint_key};
pub use shared::{
    SharedCache, SharedCacheStats, CACHE_ACQUIRE_HISTOGRAM, CACHE_WAIT_HISTOGRAM,
    DEFAULT_CACHE_CAPACITY,
};
pub use store::CorpusStore;
