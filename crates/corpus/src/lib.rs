//! `corpus` — a persistent, log-structured campaign corpus for
//! InstantCheck.
//!
//! The checker distills every run of a determinism campaign into a
//! small, durable witness: its per-checkpoint State Hashes plus a
//! handful of counters. This crate makes those witnesses *persistent*
//! and *shared*, behind one front door:
//!
//! * [`Corpus`] is the storage facade every consumer constructs —
//!   [`Corpus::open`] with a [`CorpusOptions`] builder yields a
//!   [`RunCache`] that layers the lock-free
//!   in-memory [`SharedCache`] memo over the on-disk log engine.
//!   There is no other way to assemble corpus storage; `sched`, `icd`,
//!   and every bench binary construct it the same way.
//! * On disk, completed runs live in an **append-only segment log**
//!   (`icseg-v1`): each record is framed by its 128-bit
//!   [`RunKey`] fingerprint, length, and FNV
//!   checksum, segments seal by atomic rename, the fingerprint index
//!   is rebuilt by scanning on first use (torn tails from crashed
//!   appends truncate away), inline compaction rewrites live records
//!   out of the most-garbage segment, and an optional size bound
//!   evicts whole segments oldest-first. Damaged records (bad magic,
//!   wrong version, truncation, checksum mismatch, malformed fields)
//!   are quarantined and recomputed, never trusted — and never poison
//!   their neighbors.
//! * [`CampaignBaseline`] freezes a known-good campaign's reference
//!   hashes and summary verdicts as a JSON artifact; a later campaign
//!   is compared against it and any change surfaces as a [`Drift`],
//!   localized to the first divergent checkpoint.
//! * [`fingerprint_fields`] is the order-independent fingerprint all
//!   records and memo slots are addressed by.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use corpus::{Corpus, CorpusOptions};
//! use instantcheck::{Checker, CheckerConfig, Scheme};
//! use tsim::{ProgramBuilder, ValKind};
//!
//! let dir = std::env::temp_dir().join(format!("corpus-lib-doc-{}", std::process::id()));
//! let source = || {
//!     let mut b = ProgramBuilder::new(2);
//!     let g = b.global("G", ValKind::U64, 1);
//!     let lock = b.mutex();
//!     for t in 0..2u64 {
//!         b.thread(move |ctx| {
//!             ctx.lock(lock);
//!             let v = ctx.load(g.at(0));
//!             ctx.store(g.at(0), v + t + 1);
//!             ctx.unlock(lock);
//!         });
//!     }
//!     b.build()
//! };
//!
//! // Cold campaign: every run simulates, outcomes land in the log.
//! let corpus = Arc::new(Corpus::open(CorpusOptions::at(&dir)).unwrap());
//! let cfg = CheckerConfig::new(Scheme::HwInc)
//!     .with_runs(4)
//!     .with_run_cache(corpus.clone(), "g-plus-t:full");
//! let cold = Checker::new(cfg).expect("valid config").check(source).unwrap();
//! assert_eq!(corpus.run_count(), 4);
//! assert_eq!(corpus.stores(), 4);
//!
//! // Warm campaign — a fresh instance, as in a fresh process —
//! // replays every run from disk, byte-identically.
//! let warm_corpus = Arc::new(Corpus::open(CorpusOptions::at(&dir)).unwrap());
//! let cfg = CheckerConfig::new(Scheme::HwInc)
//!     .with_runs(4)
//!     .with_run_cache(warm_corpus.clone(), "g-plus-t:full");
//! let warm = Checker::new(cfg).expect("valid config").check(source).unwrap();
//! assert_eq!(cold, warm);
//! assert_eq!(warm_corpus.hits(), 4);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod baseline;
mod compact;
mod entry;
mod error;
mod fingerprint;
mod index;
mod segment;
mod shared;
mod store;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use instantcheck::{CacheLease, CachedRun, MemoryRunCache, RunCache, RunKey};
use obs::{Registry, Snapshot, Telemetry};

pub use baseline::{CampaignBaseline, Drift};
pub use entry::{
    decode_entry, encode_entry, kind_token, parse_kind, Corruption, FORMAT_VERSION, MAGIC,
};
pub use error::CorpusError;
pub use fingerprint::{fingerprint_fields, fingerprint_key, fnv64};
pub use index::CRASH_ENV;
pub use segment::{DEFAULT_SEGMENT_BYTES, SEGMENT_MAGIC, SEGMENT_VERSION};
pub use shared::{
    SharedCache, SharedCacheStats, CACHE_ACQUIRE_HISTOGRAM, CACHE_WAIT_HISTOGRAM,
    DEFAULT_CACHE_CAPACITY,
};
pub use store::{LogStats, CORPUS_COMPACT_HISTOGRAM, CORPUS_OPEN_HISTOGRAM};

use store::LogStore;

/// How to open a [`Corpus`]: where it lives and how it is shaped.
///
/// A builder with two entry points — [`at`](CorpusOptions::at) for the
/// normal durable, directory-backed store and
/// [`ephemeral`](CorpusOptions::ephemeral) for a process-local
/// in-memory corpus (benchmarks, tests, cache-only orchestration).
/// Everything else has a sensible default.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    dir: Option<PathBuf>,
    segment_bytes: u64,
    max_bytes: Option<u64>,
    cache_slots: usize,
    registry: Option<Arc<Registry>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl CorpusOptions {
    /// Options for a durable corpus rooted at `dir` (created if
    /// missing).
    pub fn at(dir: impl Into<PathBuf>) -> CorpusOptions {
        CorpusOptions {
            dir: Some(dir.into()),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            max_bytes: None,
            cache_slots: DEFAULT_CACHE_CAPACITY,
            registry: None,
            telemetry: None,
        }
    }

    /// Options for an ephemeral, in-memory corpus: same facade, same
    /// memo layer, nothing on disk and nothing to clean up.
    pub fn ephemeral() -> CorpusOptions {
        CorpusOptions {
            dir: None,
            ..CorpusOptions::at("")
        }
    }

    /// Size bound of the active segment before it seals (default 8
    /// MiB; floors at 4 KiB).
    #[must_use]
    pub fn segment_bytes(mut self, bytes: u64) -> CorpusOptions {
        self.segment_bytes = bytes;
        self
    }

    /// Total size bound of the log. When exceeded, whole segments are
    /// evicted oldest-first (default: unbounded).
    #[must_use]
    pub fn max_bytes(mut self, bytes: u64) -> CorpusOptions {
        self.max_bytes = Some(bytes);
        self
    }

    /// In-memory memo arena capacity in slots (default
    /// [`DEFAULT_CACHE_CAPACITY`]; rounded up to a power of two).
    #[must_use]
    pub fn cache_slots(mut self, slots: usize) -> CorpusOptions {
        self.cache_slots = slots;
        self
    }

    /// Deterministic registry the memo layer counts
    /// `corpus.cache.memo_hits`/`memo_misses` into. Can also be bound
    /// after opening, via [`Corpus::bind_observers`].
    #[must_use]
    pub fn registry(mut self, registry: Arc<Registry>) -> CorpusOptions {
        self.registry = Some(registry);
        self
    }

    /// Wall-clock telemetry plane for acquire/wait, index-build, and
    /// compaction histograms. Can also be bound after opening, via
    /// [`Corpus::bind_observers`].
    #[must_use]
    pub fn telemetry(mut self, telemetry: Arc<Telemetry>) -> CorpusOptions {
        self.telemetry = Some(telemetry);
        self
    }

    /// Opens the corpus — sugar for [`Corpus::open`].
    pub fn open(self) -> Result<Corpus, CorpusError> {
        Corpus::open(self)
    }
}

/// The storage backend behind the facade.
#[derive(Debug)]
enum Backend {
    /// The durable log-structured engine.
    Log(Arc<LogStore>),
    /// A process-local in-memory store with the same counter surface.
    Memory(Arc<MemoryBackend>),
}

/// In-memory backend: a [`MemoryRunCache`] that counts the same
/// `corpus.*` registry series the log engine does, so the facade's
/// accessors mean the same thing either way.
#[derive(Debug)]
struct MemoryBackend {
    cache: MemoryRunCache,
    registry: Arc<Registry>,
}

impl RunCache for MemoryBackend {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        let hit = self.cache.lookup(key);
        self.registry.add(
            if hit.is_some() {
                "corpus.hits"
            } else {
                "corpus.misses"
            },
            1,
        );
        hit
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        self.cache.store(key, run);
        self.registry.add("corpus.stores", 1);
    }
}

/// The unified corpus: a lock-free [`SharedCache`] memo layered over a
/// storage backend, constructed exclusively through
/// [`Corpus::open`]. Implements [`RunCache`], so it plugs straight
/// into
/// [`CheckerConfig::with_run_cache`](instantcheck::CheckerConfig::with_run_cache)
/// and the orchestrator.
///
/// See the [crate docs](crate) for a cold/warm round-trip example.
#[derive(Debug)]
pub struct Corpus {
    backend: Backend,
    cache: SharedCache,
    registry: Arc<Registry>,
}

impl Corpus {
    /// Opens a corpus as described by `options`.
    ///
    /// # Errors
    ///
    /// A [`CorpusError`] when the directory cannot be prepared
    /// ([`CorpusError::Open`]) or holds a store of a different on-disk
    /// format ([`CorpusError::FormatMismatch`]) — including a PR-4
    /// `icorpus` one-file-per-run store, which is refused, never
    /// silently misread.
    pub fn open(options: CorpusOptions) -> Result<Corpus, CorpusError> {
        let (backend, registry, inner): (Backend, Arc<Registry>, Arc<dyn RunCache>) =
            match &options.dir {
                Some(dir) => {
                    let log = Arc::new(LogStore::open(
                        dir,
                        options.segment_bytes,
                        options.max_bytes,
                    )?);
                    if let Some(t) = &options.telemetry {
                        log.bind_telemetry(t);
                    }
                    let registry = Arc::clone(log.registry());
                    (Backend::Log(Arc::clone(&log)), registry, log)
                }
                None => {
                    let registry = Arc::new(Registry::new());
                    let mem = Arc::new(MemoryBackend {
                        cache: MemoryRunCache::new(),
                        registry: Arc::clone(&registry),
                    });
                    (Backend::Memory(Arc::clone(&mem)), registry, mem)
                }
            };
        let cache = SharedCache::new(inner, options.cache_slots, options.registry);
        if let Some(t) = &options.telemetry {
            cache.bind_telemetry(t);
        }
        Ok(Corpus {
            backend,
            cache,
            registry,
        })
    }

    /// Late-binds the deterministic registry and wall-clock telemetry
    /// planes — how the orchestrator attaches its own observers to a
    /// corpus the caller opened first. First binding of each wins.
    pub fn bind_observers(&self, registry: &Arc<Registry>, telemetry: &Arc<Telemetry>) {
        self.cache.bind_registry(registry);
        self.cache.bind_telemetry(telemetry);
        if let Backend::Log(log) = &self.backend {
            log.bind_telemetry(telemetry);
        }
    }

    /// The corpus root directory; `None` for an ephemeral corpus.
    pub fn dir(&self) -> Option<&Path> {
        match &self.backend {
            Backend::Log(log) => Some(log.root()),
            Backend::Memory(_) => None,
        }
    }

    /// The baselines directory (see [`CampaignBaseline`]); `None` for
    /// an ephemeral corpus.
    pub fn baselines_dir(&self) -> Option<PathBuf> {
        self.dir().map(|d| d.join("baselines"))
    }

    /// The store's private metrics registry. Counters: `corpus.hits`,
    /// `corpus.misses`, `corpus.stores`, `corpus.quarantined` (plus
    /// `corpus.quarantined.<class>` per [`Corruption::label`]),
    /// `corpus.compactions`, and `corpus.evicted`. Kept separate from
    /// any campaign registry so warm and cold campaigns report
    /// identical campaign metrics.
    pub fn metrics(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Lookups satisfied from the backend so far (this instance).
    pub fn hits(&self) -> u64 {
        self.registry.counter("corpus.hits").get()
    }

    /// Lookups that found no trustworthy record.
    pub fn misses(&self) -> u64 {
        self.registry.counter("corpus.misses").get()
    }

    /// Records written by this instance.
    pub fn stores(&self) -> u64 {
        self.registry.counter("corpus.stores").get()
    }

    /// Records quarantined by this instance.
    pub fn quarantined(&self) -> u64 {
        self.registry.counter("corpus.quarantined").get()
    }

    /// Live records in the store.
    pub fn run_count(&self) -> usize {
        match &self.backend {
            Backend::Log(log) => log.run_count(),
            Backend::Memory(mem) => mem.cache.len(),
        }
    }

    /// Memo arena capacity in slots.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// A point-in-time snapshot of the memo layer's contention stats.
    pub fn cache_stats(&self) -> SharedCacheStats {
        self.cache.stats()
    }

    /// A point-in-time snapshot of the log engine; `None` for an
    /// ephemeral corpus.
    pub fn log_stats(&self) -> Option<LogStats> {
        match &self.backend {
            Backend::Log(log) => Some(log.log_stats()),
            Backend::Memory(_) => None,
        }
    }
}

impl RunCache for Corpus {
    fn lookup(&self, key: &RunKey) -> Option<Arc<CachedRun>> {
        // The facade owns the layering, so the key's canonical tokens
        // are stack-rendered exactly once and serve the memo probe,
        // the log index probe, and the stored-key comparison alike.
        key.with_tokens(|tokens| {
            let fp = fingerprint_fields(tokens);
            if let Some(hit) = self.cache.memo_probe(fp) {
                return Some(hit);
            }
            let fetched = match &self.backend {
                Backend::Log(log) => log.lookup_prepared(fp, tokens)?,
                Backend::Memory(mem) => mem.lookup(key)?,
            };
            self.cache.memo_warm(fp, &fetched);
            Some(fetched)
        })
    }

    fn store(&self, key: &RunKey, run: &Arc<CachedRun>) {
        self.cache.store(key, run)
    }

    fn begin(&self, key: &RunKey) -> CacheLease {
        self.cache.begin(key)
    }

    fn abandon(&self, key: &RunKey) {
        self.cache.abandon(key)
    }
}
