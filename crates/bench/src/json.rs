//! A tiny JSON emitter for the harness artifacts.
//!
//! The artifacts under `results/` are plain rows-of-scalars; a full
//! serialization framework is not needed to emit them. [`ToJson`]
//! covers exactly the shapes the binaries write: scalars, strings,
//! options, vectors, small tuples, and the row structs in the crate
//! root.

use std::fmt::Write as _;

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// This value as a standalone JSON document.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Appends a JSON string literal (quoted, escaped) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends one `"key": value` object field (with leading comma unless
/// first) to `out`.
pub fn write_field<T: ToJson + ?Sized>(out: &mut String, first: &mut bool, key: &str, value: &T) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    write_str(out, key);
    out.push_str(": ");
    value.write_json(out);
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_to_json {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{:?}` round-trips f64 exactly and always includes a
            // decimal point or exponent, so the output stays a JSON
            // number distinguishable from an integer.
            let _ = write!(out, "{self:?}");
        } else {
            out.push_str("null"); // JSON has no NaN/Infinity
        }
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_str(out, self);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

macro_rules! tuple_to_json {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push_str(", "); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}
tuple_to_json!(A: 0, B: 1);
tuple_to_json!(A: 0, B: 1, C: 2);
tuple_to_json!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(2.0f64.to_json(), "2.0");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\\c\nd".to_json(), r#""a\"b\\c\nd""#);
        assert_eq!("Det→Det".to_json(), "\"Det→Det\"");
    }

    #[test]
    fn containers() {
        assert_eq!(Option::<u64>::None.to_json(), "null");
        assert_eq!(Some(3usize).to_json(), "3");
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1, 2, 3]");
        assert_eq!(("x".to_owned(), 1u64, true).to_json(), r#"["x", 1, true]"#);
    }

    #[test]
    fn object_fields() {
        let mut s = String::new();
        let mut first = true;
        s.push('{');
        write_field(&mut s, &mut first, "a", &1u64);
        write_field(&mut s, &mut first, "b", "two");
        s.push('}');
        assert_eq!(s, r#"{"a": 1, "b": "two"}"#);
    }
}
