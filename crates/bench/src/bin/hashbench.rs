//! `hashbench` — wall-clock throughput of the store→hash hot path.
//!
//! Sweeps store-heavy kernels (single-threaded scaled-up `canneal` and
//! `fluidanimate`, a synthetic store-storm, and a multi-threaded storm
//! variant) under the Native / HwInc / SwInc schemes and reports
//! stores/sec and ns/store, plus the modeled hash-update counts so the
//! fold cost can be attributed. Writes `results/BENCH_hash.json`; with
//! `--baseline FILE` the previous numbers are embedded in the same
//! artifact and per-row speedups computed — the committed regression
//! trajectory for the engine hot path.
//!
//! Flags:
//!   --reps N          timing repetitions per row (default 5)
//!   --scale F         scale kernel sizes by F (default 1.0; CI smoke
//!                     uses a small F)
//!   --emit-baseline   also write results/BENCH_hash.baseline.jsonl
//!                     (one row per line, for a later --baseline run)
//!   --baseline FILE   embed FILE's rows as the "before" numbers
//!
//! Each row's last repetition also streams `run` begin/end events
//! (mirroring the checker's trace shape, including the `hash_updates`
//! breakdown) into `results/hashbench.trace.jsonl`, so `icprof` can
//! attribute fold time vs engine time from the same artifact set.

use std::time::Instant;

use adhash::{IncHasher, Mix64Hasher};
use instantcheck::{CheckMonitor, IgnoreSpec, Scheme};
use instantcheck_bench::timing::mean_stddev;
use instantcheck_bench::{write_json, write_trace, Reporter};
use instantcheck_workloads::apps::{canneal, fluidanimate};
use obs::{Event, CONTROL_TRACK};
use tsim::{Program, ProgramBuilder, RunConfig, ValKind};

/// One measured (kernel, scheme) combination.
struct Row {
    kernel: String,
    scheme: Scheme,
    threads: usize,
    reps: usize,
    stores: u64,
    hash_updates: u64,
    hash_instr: u64,
    checkpoints: u64,
    wall_ns_best: u64,
    wall_ns_mean: f64,
    wall_ns_stddev: f64,
    stores_per_sec: f64,
    ns_per_store: f64,
    /// Estimated fraction of wall time spent folding hash deltas
    /// (hash_updates/2 fused deltas × the calibrated per-delta cost).
    fold_share_est: f64,
    /// ns/store of the same row in the `--baseline` file, if given.
    before_ns_per_store: Option<f64>,
    /// stores/sec gain over the baseline row, if given.
    speedup: Option<f64>,
}

struct Kernel {
    name: &'static str,
    threads: usize,
    build: Box<dyn Fn() -> Program>,
}

fn kernels(scale: f64) -> Vec<Kernel> {
    let s = |n: usize| ((n as f64 * scale) as usize).max(1);
    let canneal_params = canneal::Params {
        threads: 1,
        elements: 4096,
        steps: 32,
        swaps_per_step: s(2048),
    };
    let fluid_params = fluidanimate::Params {
        threads: 1,
        cells_per_thread: s(32768),
        timesteps: 4,
    };
    let storm_passes = s(64);
    let storm_mt_passes = s(24);
    vec![
        Kernel {
            name: "canneal",
            threads: 1,
            build: Box::new(move || canneal::build(&canneal_params)),
        },
        Kernel {
            name: "fluidanimate",
            threads: 1,
            build: Box::new(move || fluidanimate::build(&fluid_params)),
        },
        Kernel {
            name: "store_storm",
            threads: 1,
            build: Box::new(move || store_storm(1, 8192, storm_passes)),
        },
        Kernel {
            name: "store_storm_mt",
            threads: 4,
            build: Box::new(move || store_storm(4, 4096, storm_mt_passes)),
        },
    ]
}

/// The synthetic store-storm microkernel: each thread sweeps a private
/// slab with plain stores, pass after pass — the purest exercise of the
/// per-store engine path (no locks; barriers only between passes in the
/// multi-threaded variant).
fn store_storm(threads: usize, words_per_thread: usize, passes: usize) -> Program {
    let n = threads * words_per_thread;
    let mut b = ProgramBuilder::new(threads);
    let slab = b.global("slab", ValKind::U64, n);
    let bar = (threads > 1).then(|| b.barrier());
    for tid in 0..threads {
        b.thread(move |ctx| {
            let lo = tid * words_per_thread;
            for pass in 0..passes {
                let salt = (pass as u64) << 32 | tid as u64;
                for i in 0..words_per_thread {
                    ctx.store(slab.at(lo + i), salt ^ (i as u64).wrapping_mul(0x9e37));
                }
                if let Some(bar) = bar {
                    ctx.barrier(bar);
                }
            }
        });
    }
    b.build()
}

/// Calibrates the cost of one fused `hash_delta` fold (serial, through
/// one running sum — the unbatched per-store shape).
fn calibrate_delta_ns() -> f64 {
    let mut inc = IncHasher::new(Mix64Hasher::default());
    let iters = 4_000_000u64;
    // Warm up, then measure.
    for round in 0..2 {
        let start = Instant::now();
        for i in 0..iters {
            inc.on_write(0x1000 + (i % 8192), i, i ^ 0x5bd1);
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(inc.sum());
        if round == 1 {
            return elapsed / iters as f64;
        }
    }
    unreachable!()
}

fn run_row(
    kernel: &Kernel,
    scheme: Scheme,
    reps: usize,
    delta_ns: f64,
    trace: &mut Vec<Event>,
    reporter: &Reporter,
) -> Row {
    let mut wall_ns: Vec<f64> = Vec::with_capacity(reps);
    let mut stores = 0u64;
    let mut hash_updates = 0u64;
    let mut hash_instr = 0u64;
    let mut checkpoints = 0u64;
    let mut steps = 0u64;
    let mut native_instr = 0u64;
    for _ in 0..reps {
        let monitor = CheckMonitor::new(scheme, None, IgnoreSpec::new());
        let prog = (kernel.build)();
        let config = RunConfig::random(1);
        let start = Instant::now();
        let out = prog
            .run_with(&config, monitor)
            .expect("bench run completes");
        wall_ns.push(start.elapsed().as_nanos() as f64);
        steps = out.steps;
        native_instr = out.total_instructions();
        let hashes = out.monitor.into_hashes();
        stores = hashes.stores;
        hash_updates = hashes.hash_updates;
        hash_instr = hashes.extra_instr;
        checkpoints = hashes.checkpoints.len() as u64;
    }
    let best = wall_ns.iter().copied().fold(f64::MAX, f64::min);
    let (mean, stddev) = mean_stddev(&wall_ns);
    let fold_ns = hash_updates as f64 / 2.0 * delta_ns;
    let run_idx = trace.len() as u64 / 2;
    trace.push(
        Event::begin(0, CONTROL_TRACK, "run")
            .with_arg("run", run_idx)
            .with_arg("seed", 1u64)
            .with_arg("kernel", kernel.name)
            .with_arg("scheme", scheme.name()),
    );
    trace.push(
        Event::end(steps, CONTROL_TRACK, "run")
            .with_arg("ok", true)
            .with_arg("steps", steps)
            .with_arg("native_instr", native_instr)
            .with_arg("hash_instr", hash_instr)
            .with_arg("zero_fill_instr", 0u64)
            .with_arg("stores", stores)
            .with_arg("hash_updates", hash_updates)
            .with_arg("checkpoints", checkpoints),
    );
    let row = Row {
        kernel: kernel.name.to_owned(),
        scheme,
        threads: kernel.threads,
        reps,
        stores,
        hash_updates,
        hash_instr,
        checkpoints,
        wall_ns_best: best as u64,
        wall_ns_mean: mean,
        wall_ns_stddev: stddev,
        stores_per_sec: stores as f64 / (best / 1e9),
        ns_per_store: best / stores as f64,
        fold_share_est: (fold_ns / best).min(1.0),
        before_ns_per_store: None,
        speedup: None,
    };
    reporter.line(format!(
        "{:<16} {:<6} t{} {:>10} stores  {:>8.1} ns/store  {:>12.0} stores/s  fold~{:>4.1}%{}",
        row.kernel,
        scheme.name(),
        row.threads,
        row.stores,
        row.ns_per_store,
        row.stores_per_sec,
        row.fold_share_est * 100.0,
        match row.speedup {
            Some(s) => format!("  {s:.2}x"),
            None => String::new(),
        },
    ));
    row
}

// ---- tiny flat-JSON row reader for --baseline ---------------------------

/// Extracts `"key": <number>` from one flat JSON object line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` from one flat JSON object line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

struct BaselineRow {
    kernel: String,
    scheme: String,
    ns_per_store: f64,
    stores_per_sec: f64,
}

fn read_baseline(path: &str) -> Vec<BaselineRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| {
            Some(BaselineRow {
                kernel: field_str(l, "kernel")?.to_owned(),
                scheme: field_str(l, "scheme")?.to_owned(),
                ns_per_store: field_f64(l, "ns_per_store")?,
                stores_per_sec: field_f64(l, "stores_per_sec")?,
            })
        })
        .collect()
}

// ---- JSON emission ------------------------------------------------------

fn row_json(r: &Row) -> String {
    use instantcheck_bench::json::write_field;
    let mut out = String::from("{");
    let mut first = true;
    write_field(&mut out, &mut first, "kernel", r.kernel.as_str());
    write_field(&mut out, &mut first, "scheme", r.scheme.name());
    write_field(&mut out, &mut first, "threads", &r.threads);
    write_field(&mut out, &mut first, "reps", &r.reps);
    write_field(&mut out, &mut first, "stores", &r.stores);
    write_field(&mut out, &mut first, "hash_updates", &r.hash_updates);
    write_field(&mut out, &mut first, "hash_instr", &r.hash_instr);
    write_field(&mut out, &mut first, "checkpoints", &r.checkpoints);
    write_field(&mut out, &mut first, "wall_ns_best", &r.wall_ns_best);
    write_field(&mut out, &mut first, "wall_ns_mean", &r.wall_ns_mean);
    write_field(&mut out, &mut first, "wall_ns_stddev", &r.wall_ns_stddev);
    write_field(&mut out, &mut first, "stores_per_sec", &r.stores_per_sec);
    write_field(&mut out, &mut first, "ns_per_store", &r.ns_per_store);
    write_field(&mut out, &mut first, "fold_share_est", &r.fold_share_est);
    write_field(
        &mut out,
        &mut first,
        "before_ns_per_store",
        &r.before_ns_per_store,
    );
    write_field(&mut out, &mut first, "speedup", &r.speedup);
    out.push('}');
    out
}

fn main() {
    let mut reps = 5usize;
    let mut scale = 1.0f64;
    let mut emit_baseline = false;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--emit-baseline" => emit_baseline = true,
            "--baseline" => baseline = args.next(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let reporter = Reporter::new("BENCH_hash");
    reporter.progress("calibrating fused-delta cost…");
    let delta_ns = calibrate_delta_ns();
    reporter.progress(&format!("one serial fused hash_delta ≈ {delta_ns:.2} ns"));

    let before = baseline.as_deref().map(read_baseline);
    let mut trace: Vec<Event> = Vec::new();
    let mut rows: Vec<Row> = Vec::new();
    for kernel in kernels(scale) {
        for scheme in [Scheme::Native, Scheme::HwInc, Scheme::SwInc] {
            let mut row = run_row(&kernel, scheme, reps, delta_ns, &mut trace, &reporter);
            if let Some(before) = &before {
                if let Some(b) = before
                    .iter()
                    .find(|b| b.kernel == row.kernel && b.scheme == row.scheme.name())
                {
                    row.before_ns_per_store = Some(b.ns_per_store);
                    row.speedup = Some(row.stores_per_sec / b.stores_per_sec);
                }
            }
            rows.push(row);
        }
    }

    // The artifact: one document carrying the after rows, the embedded
    // before rows, and the calibration constant.
    let mut doc = String::from("{\"schema\": \"bench-hash/v1\", ");
    doc.push_str(&format!("\"delta_ns\": {delta_ns:?}, "));
    doc.push_str("\"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            doc.push_str(", ");
        }
        doc.push_str(&row_json(r));
    }
    doc.push_str("], \"before\": ");
    match (&before, &baseline) {
        (Some(b), Some(path)) => {
            let _ = path;
            doc.push('[');
            for (i, r) in b.iter().enumerate() {
                if i > 0 {
                    doc.push_str(", ");
                }
                doc.push_str(&format!(
                    "{{\"kernel\": \"{}\", \"scheme\": \"{}\", \"ns_per_store\": {:?}, \
                     \"stores_per_sec\": {:?}}}",
                    r.kernel, r.scheme, r.ns_per_store, r.stores_per_sec
                ));
            }
            doc.push(']');
        }
        _ => doc.push_str("null"),
    }
    doc.push('}');
    write_json("BENCH_hash", &RawJson(doc));

    if emit_baseline {
        let lines: String = rows.iter().map(|r| row_json(r) + "\n").collect();
        let path = std::path::Path::new("results").join("BENCH_hash.baseline.jsonl");
        if let Err(e) = std::fs::write(&path, lines) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
    write_trace("hashbench", &trace);
}

/// Pre-rendered JSON passed through `write_json` untouched.
struct RawJson(String);

impl instantcheck_bench::json::ToJson for RawJson {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.0);
    }
}
