//! Regenerates Figure 6: instructions executed under the four
//! configurations (Native, HW-InstantCheck_Inc, SW-InstantCheck_Inc-
//! Ideal, SW-InstantCheck_Tr-Ideal), normalized to Native, including the
//! GEOM bars and the sphinx3 delete-4% case.

use instantcheck_bench::{fig6, render_fig6, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("Figure 6: measuring the four configurations per app…");
    let (rows, geom, deletion) = fig6(&opts);
    println!("{}", render_fig6(&rows, &geom, &deletion));
    write_json("fig6", &(rows, geom, deletion));
}
