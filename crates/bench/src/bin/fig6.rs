//! Regenerates Figure 6: instructions executed under the four
//! configurations (Native, HW-InstantCheck_Inc, SW-InstantCheck_Inc-
//! Ideal, SW-InstantCheck_Tr-Ideal), normalized to Native, including the
//! GEOM bars and the sphinx3 delete-4% case.

use instantcheck_bench::{fig6, render_fig6, HarnessOpts, Reporter};

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("fig6");
    r.progress("Figure 6: measuring the four configurations per app…");
    let (rows, geom, deletion) = fig6(&opts);
    r.table(&render_fig6(&rows, &geom, &deletion));
    r.artifact(&(rows, geom, deletion));
}
