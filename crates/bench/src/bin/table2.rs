//! Regenerates Table 2: detection of the three seeded bugs (Figure 7).

use instantcheck_bench::{render_table2, table2_row, HarnessOpts, Reporter};

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("table2");
    r.progress(&format!("Table 2: {} runs per campaign…", opts.runs));
    let mut rows = Vec::new();
    for app in opts.seeded() {
        r.progress(&format!("  checking {}…", app.name));
        if let Some(row) = table2_row(&app, &opts, &r) {
            rows.push(row);
        }
    }
    r.table(&render_table2(&rows));
    r.artifact(&rows);
}
