//! Regenerates Table 2: detection of the three seeded bugs (Figure 7).

use instantcheck_bench::{render_table2, table2_row, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("Table 2: {} runs per campaign…", opts.runs);
    let mut rows = Vec::new();
    for app in opts.seeded() {
        eprintln!("  checking {}…", app.name);
        if let Some(row) = table2_row(&app, &opts) {
            rows.push(row);
        }
    }
    println!("{}", render_table2(&rows));
    write_json("table2", &rows);
}
