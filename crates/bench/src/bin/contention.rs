//! Contention sweep for the shared-corpus coordination points.
//!
//! Runs the same canneal campaign batch through the orchestrator at
//! `--jobs 1/2/4` (worker width and per-campaign fan-out together) over
//! one shared in-memory corpus, then reads the wall-clock telemetry
//! plane: queue dwell quantiles, shared-cache acquire/wait quantiles,
//! and the cache contention tallies (probe lengths, CAS retries,
//! in-flight waits, occupancy). Writes
//! `results/BENCH_contention.json` — the evidence base for the
//! "contention table" section of EXPERIMENTS.md.
//!
//! The deterministic artifacts are checked as a side effect: every
//! point re-runs the identical batch, and any cross-width divergence in
//! campaign reports would be a determinism bug, so the sweep asserts
//! the per-campaign summaries agree across the axis.

use std::sync::Arc;
use std::time::Instant;

use corpus::{Corpus, CorpusOptions, CACHE_ACQUIRE_HISTOGRAM, CACHE_WAIT_HISTOGRAM};
use instantcheck::Scheme;
use instantcheck_bench::json::{write_field, ToJson};
use instantcheck_bench::Reporter;
use instantcheck_workloads as workloads;
use obs::telemetry::TelemetrySnapshot;
use sched::{
    CampaignSpec, Orchestrator, OrchestratorConfig, ProgramSource, Resolver, Submission,
    QUEUE_DWELL_HISTOGRAM,
};

/// Worker width / per-campaign jobs sweep axis.
const JOBS_AXIS: [usize; 3] = [1, 2, 4];
/// Campaigns per sweep point (distinct base seeds, shared workload —
/// the worst case for cache contention: every campaign's keys land in
/// the same region of the shared arena).
const CAMPAIGNS: usize = 6;
/// Runs per campaign.
const RUNS: usize = 6;

/// One sweep point: wall-clock totals and quantiles at one width.
struct ContentionRow {
    jobs: usize,
    campaigns: usize,
    elapsed_ms: f64,
    dwell_count: u64,
    dwell_p50_ns: u64,
    dwell_p95_ns: u64,
    dwell_p99_ns: u64,
    acquire_count: u64,
    acquire_p99_ns: u64,
    cache_wait_count: u64,
    cache_wait_p99_ns: u64,
    capacity: usize,
    published: u64,
    probes: u64,
    probe_steps: u64,
    cas_retries: u64,
    waits: u64,
    wait_ns: u64,
    arena_full: u64,
}

impl ToJson for ContentionRow {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "jobs", &self.jobs);
        write_field(out, &mut first, "campaigns", &self.campaigns);
        write_field(out, &mut first, "elapsed_ms", &self.elapsed_ms);
        write_field(out, &mut first, "dwell_count", &self.dwell_count);
        write_field(out, &mut first, "dwell_p50_ns", &self.dwell_p50_ns);
        write_field(out, &mut first, "dwell_p95_ns", &self.dwell_p95_ns);
        write_field(out, &mut first, "dwell_p99_ns", &self.dwell_p99_ns);
        write_field(out, &mut first, "acquire_count", &self.acquire_count);
        write_field(out, &mut first, "acquire_p99_ns", &self.acquire_p99_ns);
        write_field(out, &mut first, "cache_wait_count", &self.cache_wait_count);
        write_field(
            out,
            &mut first,
            "cache_wait_p99_ns",
            &self.cache_wait_p99_ns,
        );
        write_field(out, &mut first, "capacity", &self.capacity);
        write_field(out, &mut first, "published", &self.published);
        write_field(out, &mut first, "probes", &self.probes);
        write_field(out, &mut first, "probe_steps", &self.probe_steps);
        write_field(out, &mut first, "cas_retries", &self.cas_retries);
        write_field(out, &mut first, "waits", &self.waits);
        write_field(out, &mut first, "wait_ns", &self.wait_ns);
        write_field(out, &mut first, "arena_full", &self.arena_full);
        out.push('}');
    }
}

fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        workloads::by_name(app, scaled).map(|a| a.build)
    })
}

/// The canneal batch for one sweep point: same specs every time, only
/// `jobs` varies.
fn batch(jobs: usize) -> Vec<Submission> {
    (0..CAMPAIGNS)
        .map(|i| {
            let mut spec = CampaignSpec::new("canneal:scaled", Scheme::HwInc)
                .with_runs(RUNS)
                .with_base_seed(1 + i as u64);
            spec.jobs = Some(jobs);
            Submission::new(format!("c{i}"), spec)
        })
        .collect()
}

/// Histogram quantiles (count, p50, p95, p99) by name, zeros when the
/// series was never observed.
fn quantiles(snap: &TelemetrySnapshot, name: &str) -> (u64, u64, u64, u64) {
    match snap.histograms.get(name) {
        Some(h) => (h.count, h.p50(), h.p95(), h.p99()),
        None => (0, 0, 0, 0),
    }
}

fn main() {
    let r = Reporter::new("contention");
    let mut rows = Vec::new();
    let mut baseline: Option<Vec<String>> = None;
    for jobs in JOBS_AXIS {
        r.progress(&format!("  sweeping canneal at jobs={jobs}…"));
        let config = OrchestratorConfig {
            width: jobs,
            job_budget: jobs.max(1),
            ..OrchestratorConfig::default()
        };
        let corpus = Arc::new(Corpus::open(CorpusOptions::ephemeral()).expect("ephemeral corpus"));
        let mut orch = Orchestrator::new(config, resolver(), Some(corpus));
        let telemetry = Arc::clone(orch.telemetry());
        let cache_handle = orch.corpus().cloned();
        orch.start();
        let t0 = Instant::now();
        for submission in batch(jobs) {
            orch.submit(submission);
        }
        let results = orch.drain();
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Determinism cross-check: the campaign summaries must agree
        // across the whole width axis.
        let summaries: Vec<String> = results.iter().map(|c| c.summary_json()).collect();
        match &baseline {
            Some(expect) => assert_eq!(
                expect, &summaries,
                "campaign summaries diverged at jobs={jobs}"
            ),
            None => baseline = Some(summaries),
        }

        let snap = telemetry.snapshot();
        let (dwell_count, dwell_p50_ns, dwell_p95_ns, dwell_p99_ns) =
            quantiles(&snap, QUEUE_DWELL_HISTOGRAM);
        let (acquire_count, _, _, acquire_p99_ns) = quantiles(&snap, CACHE_ACQUIRE_HISTOGRAM);
        let (cache_wait_count, _, _, cache_wait_p99_ns) = quantiles(&snap, CACHE_WAIT_HISTOGRAM);
        let stats = cache_handle.as_ref().map(|c| c.cache_stats());
        let mean_probe = stats.map_or(0.0, |s| {
            if s.probes == 0 {
                0.0
            } else {
                s.probe_steps as f64 / s.probes as f64
            }
        });

        r.line(format!(
            "jobs={jobs}: {CAMPAIGNS} campaigns in {elapsed_ms:.1}ms, \
             dwell p95<= {dwell_p95_ns}ns over {dwell_count}, \
             {acquire_count} cache acquire(s) (mean probe {mean_probe:.2}, \
             {} CAS retries, {} in-flight waits)",
            stats.map_or(0, |s| s.cas_retries),
            stats.map_or(0, |s| s.waits),
        ));
        let s = stats.unwrap_or(corpus::SharedCacheStats {
            capacity: 0,
            published: 0,
            in_flight: 0,
            abandoned: 0,
            probes: 0,
            probe_steps: 0,
            cas_retries: 0,
            waits: 0,
            wait_ns: 0,
            arena_full: 0,
        });
        rows.push(ContentionRow {
            jobs,
            campaigns: results.len(),
            elapsed_ms,
            dwell_count,
            dwell_p50_ns,
            dwell_p95_ns,
            dwell_p99_ns,
            acquire_count,
            acquire_p99_ns,
            cache_wait_count,
            cache_wait_p99_ns,
            capacity: s.capacity,
            published: s.published,
            probes: s.probes,
            probe_steps: s.probe_steps,
            cas_retries: s.cas_retries,
            waits: s.waits,
            wait_ns: s.wait_ns,
            arena_full: s.arena_full,
        });
    }
    instantcheck_bench::write_json("BENCH_contention", &rows);
}
