//! Regenerates Figure 8: distributions of nondeterminism points for the
//! seeded bugs of Figure 7 (checked with FP rounding, so all observed
//! nondeterminism is the bug's).

use adhash::FpRound;
use instantcheck_bench::{distributions, render_distributions, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    let mut reports = Vec::new();
    for app in opts.seeded() {
        eprintln!("  measuring distributions for {}…", app.name);
        let rounding = app.uses_fp.then(FpRound::default);
        if let Some(report) = distributions(&app, &opts, rounding) {
            reports.push(report);
        }
    }
    println!("{}", render_distributions(&reports));
    write_json("fig8", &reports);
}
