//! Regenerates Figure 8: distributions of nondeterminism points for the
//! seeded bugs of Figure 7 (checked with FP rounding, so all observed
//! nondeterminism is the bug's).

use adhash::FpRound;
use instantcheck_bench::{distributions, render_distributions, HarnessOpts, Reporter};

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("fig8");
    let mut reports = Vec::new();
    for app in opts.seeded() {
        r.progress(&format!("  measuring distributions for {}…", app.name));
        let rounding = app.uses_fp.then(FpRound::default);
        if let Some(report) = distributions(&app, &opts, rounding, &r) {
            reports.push(report);
        }
    }
    r.table(&render_distributions(&reports));
    r.artifact(&reports);
}
