//! Regenerates Table 1: determinism characteristics of the 17
//! applications. `--scaled` for miniatures, `--runs N` (default 30).

use instantcheck_bench::{render_table1, table1_row, write_json, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!(
        "Table 1: {} runs per campaign, {} workloads…",
        opts.runs,
        if opts.scaled { "scaled" } else { "paper-scale" }
    );
    let mut rows = Vec::new();
    for app in opts.apps() {
        eprintln!("  characterizing {}…", app.name);
        if let Some(row) = table1_row(&app, &opts) {
            rows.push(row);
        }
    }
    println!("{}", render_table1(&rows));
    println!("* streamcluster: nondeterministic barriers caused by the PARSEC 2.1");
    println!("  order-violation bug; with the bug fixed they become deterministic.");
    write_json("table1", &rows);
}
