//! Regenerates Table 1: determinism characteristics of the 17
//! applications. `--scaled` for miniatures, `--runs N` (default 30).

use instantcheck_bench::{render_table1, table1_row, HarnessOpts, Reporter};

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("table1");
    r.progress(&format!(
        "Table 1: {} runs per campaign, {} workloads…",
        opts.runs,
        if opts.scaled { "scaled" } else { "paper-scale" }
    ));
    let mut rows = Vec::new();
    for app in opts.apps() {
        r.progress(&format!("  characterizing {}…", app.name));
        if let Some(row) = table1_row(&app, &opts, &r) {
            rows.push(row);
        }
    }
    r.table(&render_table1(&rows));
    r.line("* streamcluster: nondeterministic barriers caused by the PARSEC 2.1");
    r.line("  order-violation bug; with the bug fixed they become deterministic.");
    r.artifact(&rows);
}
