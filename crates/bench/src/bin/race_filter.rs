//! §6.1 demonstration: filtering out benign data races by comparing the
//! state hashes of runs in which the race resolved in each order
//! (Narayanasamy et al.'s flip-and-compare, made cheap by InstantCheck).
//!
//! Each candidate race is classified against the state of the program
//! that contains it (as in the original approach, the comparison is per
//! race: a harmful race elsewhere in the same program would dominate the
//! whole-state comparison).

use instantcheck_bench::{HarnessOpts, Reporter};
use instantcheck_explorer::races::{classify_races, RaceReport};
use tsim::{Program, ProgramBuilder, ValKind};

/// Benign: both threads set the same "done" flag value (the
/// volrend-style idempotent race).
fn benign_flag() -> Program {
    let mut b = ProgramBuilder::new(2);
    let flag = b.global("done_flag", ValKind::U64, 1);
    for _ in 0..2 {
        b.thread(move |ctx| {
            ctx.work(10);
            ctx.store(flag.at(0), 1);
        });
    }
    b.build()
}

/// Benign: racy reads of a published value feeding an idempotent update.
fn benign_republish() -> Program {
    let mut b = ProgramBuilder::new(2);
    let cell = b.global("cell", ValKind::U64, 1);
    b.setup(move |s| s.store(cell.at(0), 5));
    for _ in 0..2 {
        b.thread(move |ctx| {
            let v = ctx.load(cell.at(0)); // racy read…
            ctx.store(cell.at(0), v | 5); // …but the update is idempotent
        });
    }
    b.build()
}

/// Harmful: last writer wins with different values.
fn harmful_last_writer() -> Program {
    let mut b = ProgramBuilder::new(2);
    let winner = b.global("winner", ValKind::U64, 1);
    for t in 0..2u64 {
        b.thread(move |ctx| {
            ctx.work(10);
            ctx.store(winner.at(0), t + 1);
        });
    }
    b.build()
}

/// Harmful: unsynchronized read-modify-write loses updates.
fn harmful_lost_update() -> Program {
    let mut b = ProgramBuilder::new(2);
    let counter = b.global("counter", ValKind::U64, 1);
    for _ in 0..2 {
        b.thread(move |ctx| {
            let v = ctx.load(counter.at(0));
            ctx.sched_yield(); // widen the window
            ctx.store(counter.at(0), v + 1);
        });
    }
    b.build()
}

fn show(r: &Reporter, name: &str, report: &RaceReport) {
    for race in &report.races {
        r.line(format!(
            "{:<22} {:<12} {:>10} {:>16} {:>16}",
            name,
            race.addr.to_string(),
            format!("{}<->{}", race.threads.0, race.threads.1),
            format!("{}/{}", race.order_counts.0, race.order_counts.1),
            format!("{:?}", race.verdict),
        ));
    }
}

type Case = (&'static str, fn() -> Program);

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("race_filter");
    let runs = opts.runs.max(20);
    r.line(format!(
        "{:<22} {:<12} {:>10} {:>16} {:>16}",
        "program", "address", "threads", "orders seen", "verdict"
    ));
    r.line(format!("{:-<82}", ""));

    let mut rows = Vec::new();
    let mut benign = 0usize;
    let mut harmful = 0usize;
    let cases: [Case; 4] = [
        ("benign_flag", benign_flag),
        ("benign_republish", benign_republish),
        ("harmful_last_writer", harmful_last_writer),
        ("harmful_lost_update", harmful_lost_update),
    ];
    for (name, source) in cases {
        let report = classify_races(source, runs, opts.seed).expect("runs complete");
        show(&r, name, &report);
        benign += report.benign().count();
        harmful += report.harmful().count();
        for race in &report.races {
            rows.push((
                name.to_owned(),
                race.addr.raw(),
                format!("{:?}", race.verdict),
            ));
        }
    }
    r.line(format!(
        "\n{benign} benign race(s) filtered out, {harmful} harmful race(s) kept \
         (the paper cites ~90% of real races as benign)"
    ));
    r.artifact(&rows);
}
