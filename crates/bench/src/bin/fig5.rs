//! Regenerates Figure 5: distributions of nondeterminism points for
//! representative applications (how many of the 30 runs produced each
//! distinct state at each checking point).
//!
//! Also times the campaign executor on the same applications across
//! worker counts (`--jobs` adds an extra point to the sweep) and writes
//! `results/BENCH_campaign.json` — the scaling artifact for the
//! parallel checking harness. On a single-core host the speedup column
//! honestly reports ~1.0x; the sweep still exercises the fan-out path.

use instantcheck_bench::{
    campaign_bench, distributions, render_campaign_bench, render_distributions, HarnessOpts,
    Reporter,
};

const APPS: [&str; 3] = ["canneal", "fluidanimate", "sphinx3"];
/// Campaign repetitions per (app, jobs) point.
const REPS: usize = 3;

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("fig5");
    let mut reports = Vec::new();
    // (a) an inherently nondeterministic app; (b) an FP-precision app
    // checked bit-exactly (the "highly nondeterministic without
    // rounding" panel); (c) a small-struct app checked bit-exactly.
    for name in APPS {
        r.progress(&format!("  measuring distributions for {name}…"));
        let app = instantcheck_workloads::by_name(name, opts.scaled).expect("registered");
        if let Some(report) = distributions(&app, &opts, None, &r) {
            reports.push(report);
        }
    }
    r.table(&render_distributions(&reports));
    r.artifact(&reports);

    // Executor-scaling sweep: serial baseline plus fan-out points.
    let mut jobs_axis = vec![1, 2, 4];
    if let Some(jobs) = opts.jobs {
        if !jobs_axis.contains(&jobs) {
            jobs_axis.push(jobs);
        }
    }
    let mut rows = Vec::new();
    for name in APPS {
        let app = instantcheck_workloads::by_name(name, opts.scaled).expect("registered");
        if let Some(mut app_rows) = campaign_bench(&app, &opts, &jobs_axis, REPS, &r) {
            rows.append(&mut app_rows);
        }
    }
    r.table(&render_campaign_bench(&rows));
    instantcheck_bench::write_json("BENCH_campaign", &rows);
}
