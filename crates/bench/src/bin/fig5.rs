//! Regenerates Figure 5: distributions of nondeterminism points for
//! representative applications (how many of the 30 runs produced each
//! distinct state at each checking point).

use instantcheck_bench::{distributions, render_distributions, HarnessOpts, Reporter};

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("fig5");
    let mut reports = Vec::new();
    // (a) an inherently nondeterministic app; (b) an FP-precision app
    // checked bit-exactly (the "highly nondeterministic without
    // rounding" panel); (c) a small-struct app checked bit-exactly.
    for name in ["canneal", "fluidanimate", "sphinx3"] {
        r.progress(&format!("  measuring distributions for {name}…"));
        let app = instantcheck_workloads::by_name(name, opts.scaled).expect("registered");
        if let Some(report) = distributions(&app, &opts, None, &r) {
            reports.push(report);
        }
    }
    r.table(&render_distributions(&reports));
    r.artifact(&reports);
}
