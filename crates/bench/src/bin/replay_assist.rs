//! §6.3 demonstration: hash-assisted deterministic replay. Record a
//! partial decision log plus checkpoint hashes of an original run, then
//! search completions until the hashes confirm full-state reproduction.

use instantcheck_bench::{HarnessOpts, Reporter};
use instantcheck_explorer::replay::{record_partial_log, search_replay};
use tsim::{Program, ProgramBuilder, ValKind};

fn program() -> Program {
    let mut b = ProgramBuilder::new(3);
    let g = b.global("g", ValKind::U64, 2);
    let bar = b.barrier();
    let lock = b.mutex();
    for t in 0..3u64 {
        b.thread(move |ctx| {
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v * 3 + t);
            ctx.unlock(lock);
            ctx.barrier(bar);
            ctx.lock(lock);
            let v = ctx.load(g.at(1));
            ctx.store(g.at(1), v * 5 + t);
            ctx.unlock(lock);
        });
    }
    b.build()
}

fn main() {
    let opts = HarnessOpts::from_args();
    let r = Reporter::new("replay_assist");
    r.line(format!(
        "{:>12} {:>10} {:>12} {:>14}",
        "log kept", "attempts", "reproduced", "early rejects"
    ));
    r.line("-".repeat(54));
    let mut rows = Vec::new();
    for fraction in [1.0, 0.75, 0.5, 0.25, 0.0] {
        let log = record_partial_log(&program, opts.seed + 42, fraction)
            .expect("recording run completes");
        let result = search_replay(&program, &log, 2000).expect("search runs complete");
        r.line(format!(
            "{:>11}% {:>10} {:>12} {:>14}",
            (fraction * 100.0) as u32,
            result.attempts,
            result.reproducing_seed.is_some(),
            result.early_rejects,
        ));
        rows.push((fraction, result.attempts, result.reproducing_seed.is_some()));
    }
    r.line("\nShorter logs need longer searches; the checkpoint hashes both");
    r.line("confirm full-state reproduction and reject divergent candidates");
    r.line("at intermediate checkpoints (§6.3).");
    r.artifact(&rows);
}
