//! Storage-backend micro-benchmark: one-file-per-run vs the
//! log-structured `Corpus` engine.
//!
//! ```text
//! corpusbench [--entries N[,N...]]
//! ```
//!
//! For each population size (default 10k and 100k entries) the bench
//! builds the same synthetic run population twice: once through a
//! faithful reimplementation of the PR-4 one-file-per-run backend
//! (fingerprint-named file per record, tmp+rename atomicity, the same
//! `icorpus-v1` entry codec), and once through
//! [`Corpus::open`](corpus::Corpus) over the `icseg-v1` segment log.
//! It then measures the *warm* path both ways — a fresh instance over
//! the populated store, every key looked up exactly once in a
//! scattered order — plus cold write cost and (for the log engine) the
//! open-time index scan. Results land in `results/BENCH_corpus.json`;
//! EXPERIMENTS.md interprets them. The decode cost is identical on
//! both sides by construction, so the delta isolates the I/O path:
//! open+read+close per lookup against one `pread` on an already-open
//! segment handle.
//!
//! The bench asserts every lookup round-trips (both backends, every
//! key), so it doubles as an end-to-end codec check at population
//! sizes the unit suites never reach.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use adhash::HashSum;
use corpus::{decode_entry, encode_entry, fingerprint_key, Corpus, CorpusOptions};
use detrand::splitmix64;
use instantcheck::{CachedRun, CheckpointRecord, RunCache, RunHashes, RunKey, Scheme};
use instantcheck_bench::json::{write_field, ToJson};
use instantcheck_bench::Reporter;
use tsim::{CheckpointKind, SwitchPolicy};

/// Checkpoints per synthetic run — sized so one encoded entry is a few
/// hundred bytes, the shape real scaled campaigns produce.
const CHECKPOINTS: usize = 8;

/// One population size: cold-write and warm-lookup cost per backend.
struct CorpusBenchRow {
    entries: usize,
    flat_write_ms: f64,
    flat_lookup_ms: f64,
    flat_lookup_ns_per_op: u64,
    log_write_ms: f64,
    log_open_ms: f64,
    log_lookup_ms: f64,
    log_lookup_ns_per_op: u64,
    warm_speedup_x: f64,
    segments: u64,
    live_bytes: u64,
}

impl ToJson for CorpusBenchRow {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "entries", &self.entries);
        write_field(out, &mut first, "flat_write_ms", &self.flat_write_ms);
        write_field(out, &mut first, "flat_lookup_ms", &self.flat_lookup_ms);
        write_field(
            out,
            &mut first,
            "flat_lookup_ns_per_op",
            &self.flat_lookup_ns_per_op,
        );
        write_field(out, &mut first, "log_write_ms", &self.log_write_ms);
        write_field(out, &mut first, "log_open_ms", &self.log_open_ms);
        write_field(out, &mut first, "log_lookup_ms", &self.log_lookup_ms);
        write_field(
            out,
            &mut first,
            "log_lookup_ns_per_op",
            &self.log_lookup_ns_per_op,
        );
        write_field(out, &mut first, "warm_speedup_x", &self.warm_speedup_x);
        write_field(out, &mut first, "segments", &self.segments);
        write_field(out, &mut first, "live_bytes", &self.live_bytes);
        out.push('}');
    }
}

/// The PR-4 backend, reimplemented minimally and faithfully: one
/// fingerprint-named file per record under the root, written via
/// tmp+rename, read back through the shared entry codec.
struct FlatStore {
    dir: PathBuf,
}

impl FlatStore {
    fn open(dir: &Path) -> FlatStore {
        fs::create_dir_all(dir).expect("flat store dir");
        FlatStore {
            dir: dir.to_path_buf(),
        }
    }

    fn path(&self, key: &RunKey) -> PathBuf {
        self.dir.join(format!("{:032x}.run", fingerprint_key(key)))
    }

    fn store(&self, key: &RunKey, run: &CachedRun) {
        let path = self.path(key);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, encode_entry(key, run)).expect("flat store write");
        fs::rename(&tmp, &path).expect("flat store rename");
    }

    fn lookup(&self, key: &RunKey) -> Option<CachedRun> {
        let text = fs::read_to_string(self.path(key)).ok()?;
        let (tokens, run) = decode_entry(&text).ok()?;
        // Field-for-field key verification, exactly as the PR-4 store
        // did it — a fingerprint collision must never read as a hit.
        let expected: Vec<(String, String)> = key
            .tokens()
            .into_iter()
            .map(|(l, v)| (l.to_owned(), v))
            .collect();
        (tokens == expected).then_some(run)
    }
}

fn sample_key(seed: u64) -> RunKey {
    RunKey {
        workload: "corpusbench:scaled".into(),
        scheme: Scheme::HwInc,
        seed,
        lib_seed: 42,
        switch: SwitchPolicy::SyncOnly,
        max_steps: 100_000,
        rounding: None,
        ignore_token: 0,
        fault_token: 0,
        cache_model: false,
        alloc_seed: None,
    }
}

fn sample_run(seed: u64) -> CachedRun {
    let checkpoints = (0..CHECKPOINTS as u64)
        .map(|j| CheckpointRecord {
            kind: CheckpointKind::End,
            hash: HashSum::from_raw(splitmix64(seed.wrapping_mul(8191) ^ j)),
        })
        .collect();
    CachedRun {
        hashes: RunHashes {
            checkpoints,
            output_digest: splitmix64(seed ^ 0xD1_6E57),
            extra_instr: seed % 977,
            stores: 1 + seed % 4093,
            hash_updates: 1 + seed % 509,
            cache: None,
        },
        steps: 1_000 + seed % 251,
        native_instr: 5_000 + seed % 997,
        zero_fill_instr: seed % 7,
        alloc_log: None,
        sim_trace: None,
    }
}

/// Lookup order: a fixed stride permutation so neither backend gets a
/// free sequential-scan advantage over the store layout it wrote.
fn scattered(n: usize) -> impl Iterator<Item = u64> {
    (0..n as u64).map(move |i| (i.wrapping_mul(7919)) % n as u64)
}

fn tempdir(tag: &str, entries: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "corpusbench-{tag}-{entries}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn bench_size(r: &Reporter, entries: usize) -> CorpusBenchRow {
    // Both warm loops replay this same key sequence; building it once
    // outside the timed regions keeps key construction out of the
    // numbers — the measurement is the store lookup, nothing else.
    let keys: Vec<(u64, RunKey)> = scattered(entries).map(|i| (i, sample_key(i))).collect();

    // --- one-file-per-run backend ---------------------------------
    r.progress(&format!("  flat backend, {entries} entries…"));
    let flat_dir = tempdir("flat", entries);
    let flat = FlatStore::open(&flat_dir);
    let t0 = Instant::now();
    for i in 0..entries as u64 {
        flat.store(&sample_key(i), &sample_run(i));
    }
    let flat_write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let warm = FlatStore::open(&flat_dir);
    let t0 = Instant::now();
    for (i, key) in &keys {
        let run = warm.lookup(key).expect("flat entry present");
        assert_eq!(run.hashes.output_digest, splitmix64(i ^ 0xD1_6E57));
    }
    let flat_lookup = t0.elapsed();
    fs::remove_dir_all(&flat_dir).expect("flat cleanup");

    // --- log-structured backend -----------------------------------
    r.progress(&format!("  log backend, {entries} entries…"));
    let log_dir = tempdir("log", entries);
    // Memo arena sized to the population — the knob `icd
    // --corpus-cache-slots` exposes; an undersized arena would turn
    // every publish into a full-table probe and measure the memo's
    // overflow behavior instead of the storage engine.
    let slots = (2 * entries).next_power_of_two();
    let cold = Corpus::open(CorpusOptions::at(&log_dir).cache_slots(slots)).expect("cold corpus");
    let t0 = Instant::now();
    for i in 0..entries as u64 {
        cold.store(&sample_key(i), &Arc::new(sample_run(i)));
    }
    let log_write_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(cold);
    let t0 = Instant::now();
    let warm = Corpus::open(CorpusOptions::at(&log_dir).cache_slots(slots)).expect("warm corpus");
    let log_open_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        warm.run_count(),
        entries,
        "index rebuild found every record"
    );
    let t0 = Instant::now();
    for (i, key) in &keys {
        let run = warm.lookup(key).expect("log entry present");
        assert_eq!(run.hashes.output_digest, splitmix64(i ^ 0xD1_6E57));
    }
    let log_lookup = t0.elapsed();
    let stats = warm.log_stats().expect("durable corpus has log stats");
    fs::remove_dir_all(&log_dir).expect("log cleanup");

    let flat_lookup_ms = flat_lookup.as_secs_f64() * 1e3;
    let log_lookup_ms = log_lookup.as_secs_f64() * 1e3;
    let warm_speedup_x = flat_lookup_ms / log_lookup_ms.max(f64::EPSILON);
    r.line(format!(
        "{entries} entries: warm lookup {:.0}ns/op flat vs {:.0}ns/op log \
         ({warm_speedup_x:.2}x), cold write {flat_write_ms:.0}ms vs \
         {log_write_ms:.0}ms, log open {log_open_ms:.1}ms over {} segment(s)",
        flat_lookup.as_nanos() as f64 / entries as f64,
        log_lookup.as_nanos() as f64 / entries as f64,
        stats.segments,
    ));
    CorpusBenchRow {
        entries,
        flat_write_ms,
        flat_lookup_ms,
        flat_lookup_ns_per_op: flat_lookup.as_nanos() as u64 / entries as u64,
        log_write_ms,
        log_open_ms,
        log_lookup_ms,
        log_lookup_ns_per_op: log_lookup.as_nanos() as u64 / entries as u64,
        warm_speedup_x,
        segments: stats.segments,
        live_bytes: stats.live_bytes,
    }
}

fn main() -> ExitCode {
    let mut sizes = vec![10_000usize, 100_000];
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--entries" => {
                i += 1;
                let Some(spec) = args.get(i) else {
                    eprintln!("--entries needs N[,N...]");
                    return ExitCode::from(2);
                };
                match spec.split(',').map(str::parse).collect() {
                    Ok(parsed) => sizes = parsed,
                    Err(e) => {
                        eprintln!("bad --entries {spec:?}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("usage: corpusbench [--entries N[,N...]]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if sizes.is_empty() || sizes.contains(&0) {
        eprintln!("--entries needs positive sizes");
        return ExitCode::from(2);
    }
    let r = Reporter::new("corpusbench");
    let rows: Vec<CorpusBenchRow> = sizes.into_iter().map(|n| bench_size(&r, n)).collect();
    instantcheck_bench::write_json("BENCH_corpus", &rows);
    ExitCode::SUCCESS
}
