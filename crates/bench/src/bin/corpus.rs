//! Corpus maintenance: records campaign baselines into a persistent
//! run corpus and checks fresh campaigns against them.
//!
//! ```text
//! corpus record --app canneal [--scaled] [--runs N] [--seed N] [--dir DIR]
//! corpus check  --app canneal [--scaled] [--runs N] [--seed N] [--dir DIR] [--require-hits]
//! ```
//!
//! `record` runs one checking campaign, stores every completed run in
//! the content-addressed corpus, and freezes the campaign's reference
//! hashes and summary verdicts as a named baseline under
//! `<dir>/baselines/`. `check` reruns the campaign (replaying run
//! outcomes from the corpus where possible), compares it against the
//! stored baseline, and exits nonzero on drift — printing the first
//! divergent checkpoint, and, when the fresh campaign disagrees with
//! *itself*, the state-diff localization (`instantcheck::localize`)
//! that maps the divergence back to globals and allocation sites.
//! `--require-hits` additionally fails the check if nothing was
//! replayed from the corpus (the CI smoke leg uses this to prove the
//! warm path actually engaged).
//!
//! Campaign shape comes from the shared spec flags (`bench::cli`), so
//! `--runs`/`--seed`/`--jobs`/`--scheme`/`--spec FILE` — and the
//! storage flags `--corpus-dir`/`--corpus-segment-bytes`/
//! `--corpus-max-bytes`/`--corpus-cache-slots` — mean exactly what
//! they mean to every other harness binary and to `icd`. `--dir DIR`
//! is this binary's historic alias for `--corpus-dir DIR`; without
//! either, the store lives at `results/corpus`.

use std::process::ExitCode;
use std::sync::Arc;

use corpus::{CampaignBaseline, Corpus, CorpusOptions};
use instantcheck::{CampaignSpec, CheckReport, Checker, CheckerConfig};
use instantcheck_bench::cli;
use instantcheck_workloads::AppSpec;

struct Cli {
    command: String,
    app: String,
    scaled: bool,
    corpus: Arc<Corpus>,
    require_hits: bool,
    spec: CampaignSpec,
}

fn usage() -> ! {
    eprintln!(
        "usage: corpus <record|check> --app NAME [--scaled] [--runs N] \
         [--seed N] [--jobs N] [--dir DIR] [--require-hits] [shared spec flags]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sa = cli::parse_spec(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let mut command = String::new();
    let mut app = String::new();
    let mut dir: Option<String> = None;
    let mut require_hits = false;
    let mut i = 0;
    while i < sa.rest.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            sa.rest.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match sa.rest[i].as_str() {
            "record" | "check" if command.is_empty() => command = sa.rest[i].clone(),
            "--app" => app = value(&mut i),
            "--dir" => dir = Some(value(&mut i)),
            "--require-hits" => require_hits = true,
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }
    if command.is_empty() || app.is_empty() {
        usage();
    }
    let mut spec = sa.spec;
    spec.workload = format!("{app}:{}", if sa.scaled { "scaled" } else { "full" });
    // `--dir` (this binary's historic spelling) overrides the shared
    // `--corpus-dir`; absent both, the store defaults to
    // `results/corpus`. All three routes land in the same
    // `CorpusOptions`, so sizing flags apply regardless of spelling.
    let corpus = match (&dir, &sa.corpus) {
        (None, Some(corpus)) => Arc::clone(corpus),
        _ => {
            let chosen = dir
                .or_else(|| spec.corpus_dir.clone())
                .unwrap_or_else(|| "results/corpus".to_owned());
            let mut options = CorpusOptions::at(&chosen);
            if let Some(n) = spec.corpus_segment_bytes {
                options = options.segment_bytes(n);
            }
            if let Some(n) = spec.corpus_max_bytes {
                options = options.max_bytes(n);
            }
            if let Some(n) = spec.corpus_cache_slots {
                options = options.cache_slots(n as usize);
            }
            match options.open() {
                Ok(c) => Arc::new(c),
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    };
    spec.corpus_dir = corpus.dir().map(|p| p.to_string_lossy().into_owned());
    Cli {
        command,
        app,
        scaled: sa.scaled,
        corpus,
        require_hits,
        spec,
    }
}

/// The baseline name: one per `(app, scale, runs, seed)` campaign
/// shape, so differently-shaped campaigns never compare against each
/// other's baselines.
fn baseline_name(cli: &Cli) -> String {
    format!(
        "{}-{}-r{}-s{}",
        cli.app,
        if cli.scaled { "scaled" } else { "full" },
        cli.spec.runs,
        cli.spec.base_seed
    )
}

fn campaign(cli: &Cli, app: &AppSpec) -> (Vec<instantcheck::RunHashes>, CheckReport) {
    let cfg = CheckerConfig::from_spec(&cli.spec)
        .with_run_cache(Arc::clone(&cli.corpus) as _, &cli.spec.workload);
    let build = Arc::clone(&app.build);
    let runs = Checker::new(cfg)
        .unwrap_or_else(|e| {
            eprintln!("{}: invalid campaign: {e}", cli.app);
            std::process::exit(2);
        })
        .collect_runs(&move || build())
        .unwrap_or_else(|e| {
            eprintln!("{}: campaign failed: {e}", cli.app);
            std::process::exit(2);
        });
    let report = CheckReport::from_runs(&runs);
    (runs, report)
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let Some(app) = instantcheck_workloads::by_name(&cli.app, cli.scaled) else {
        eprintln!("unknown app {:?} at this scale", cli.app);
        return ExitCode::from(2);
    };
    let store = &cli.corpus;
    let baselines = store
        .baselines_dir()
        .expect("corpus opened with a directory");
    let name = baseline_name(&cli);
    let (runs, report) = campaign(&cli, &app);
    eprintln!(
        "{}: {} runs, corpus {} hits / {} misses / {} stores / {} quarantined",
        cli.app,
        report.runs,
        store.hits(),
        store.misses(),
        store.stores(),
        store.quarantined(),
    );

    if cli.command == "record" {
        let baseline = CampaignBaseline::capture(
            &name,
            &cli.spec.workload,
            cli.spec.scheme,
            cli.spec.base_seed,
            &runs[0],
            &report,
        );
        if let Err(e) = baseline.save(&baselines) {
            eprintln!("cannot save baseline {name}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "recorded baseline {name}: {} checkpoints, {} ndet points, det_at_end={}",
            baseline.reference.len(),
            baseline.ndet_points,
            baseline.det_at_end
        );
        return ExitCode::SUCCESS;
    }

    // check
    let baseline = match CampaignBaseline::load(&baselines, &name) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "no baseline {name} in {}: {e} (run `corpus record` first)",
                baselines.display()
            );
            return ExitCode::from(2);
        }
    };
    let drifts = baseline.compare(&runs[0], &report);
    let mut failed = false;
    if drifts.is_empty() {
        println!(
            "{name}: no drift ({} checkpoints match)",
            baseline.reference.len()
        );
    } else {
        failed = true;
        println!("{name}: DRIFT detected ({} finding(s))", drifts.len());
        for d in &drifts {
            println!("  {d}");
        }
        // When the fresh campaign disagrees with itself, the full
        // state-diff localization names the structures responsible.
        if let Some(ndet_run) = report.first_ndet_run {
            let diverging = &runs[ndet_run - 1];
            if let Some(seq) = runs[0].first_divergent_checkpoint(diverging) {
                let build = Arc::clone(&app.build);
                match instantcheck::localize(
                    move || build(),
                    cli.spec.base_seed,
                    cli.spec.base_seed + (ndet_run as u64 - 1),
                    seq,
                    cli.spec.lib_seed,
                    None,
                ) {
                    Ok(loc) => {
                        println!("  localization at checkpoint {seq} (run 1 vs run {ndet_run}):");
                        for (origin, count) in loc.summary() {
                            println!("    {count:>6} differing word(s): {origin}");
                        }
                    }
                    Err(e) => eprintln!("  localization failed: {e}"),
                }
            }
        }
    }
    if cli.require_hits && store.hits() == 0 {
        eprintln!("{name}: --require-hits set but no run was replayed from the corpus");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
