//! Corpus maintenance: records campaign baselines into a persistent
//! run corpus and checks fresh campaigns against them.
//!
//! ```text
//! corpus record --app canneal [--scaled] [--runs N] [--seed N] [--dir DIR]
//! corpus check  --app canneal [--scaled] [--runs N] [--seed N] [--dir DIR] [--require-hits]
//! ```
//!
//! `record` runs one checking campaign, stores every completed run in
//! the content-addressed corpus, and freezes the campaign's reference
//! hashes and summary verdicts as a named baseline under
//! `<dir>/baselines/`. `check` reruns the campaign (replaying run
//! outcomes from the corpus where possible), compares it against the
//! stored baseline, and exits nonzero on drift — printing the first
//! divergent checkpoint, and, when the fresh campaign disagrees with
//! *itself*, the state-diff localization (`instantcheck::localize`)
//! that maps the divergence back to globals and allocation sites.
//! `--require-hits` additionally fails the check if nothing was
//! replayed from the corpus (the CI smoke leg uses this to prove the
//! warm path actually engaged).

use std::process::ExitCode;
use std::sync::Arc;

use corpus::{CampaignBaseline, CorpusStore};
use instantcheck::{CheckReport, Checker, CheckerConfig, Scheme};
use instantcheck_workloads::AppSpec;

struct Cli {
    command: String,
    app: String,
    scaled: bool,
    runs: usize,
    seed: u64,
    jobs: Option<usize>,
    dir: String,
    require_hits: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: corpus <record|check> --app NAME [--scaled] [--runs N] \
         [--seed N] [--jobs N] [--dir DIR] [--require-hits]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let args: Vec<String> = std::env::args().collect();
    let Some(command) = args.get(1).cloned() else {
        usage();
    };
    if command != "record" && command != "check" {
        usage();
    }
    let mut cli = Cli {
        command,
        app: String::new(),
        scaled: false,
        runs: 30,
        seed: 1,
        jobs: None,
        dir: "results/corpus".to_owned(),
        require_hits: false,
    };
    let mut i = 2;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--app" => cli.app = value(&args, &mut i),
            "--scaled" => cli.scaled = true,
            "--runs" => cli.runs = value(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cli.seed = value(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => cli.jobs = Some(value(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--dir" => cli.dir = value(&args, &mut i),
            "--require-hits" => cli.require_hits = true,
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }
    if cli.app.is_empty() {
        usage();
    }
    cli
}

/// The baseline name: one per `(app, scale, runs, seed)` campaign
/// shape, so differently-shaped campaigns never compare against each
/// other's baselines.
fn baseline_name(cli: &Cli) -> String {
    format!(
        "{}-{}-r{}-s{}",
        cli.app,
        if cli.scaled { "scaled" } else { "full" },
        cli.runs,
        cli.seed
    )
}

fn config(cli: &Cli, store: &Arc<CorpusStore>, workload: &str) -> CheckerConfig {
    let mut cfg = CheckerConfig::new(Scheme::HwInc)
        .with_runs(cli.runs)
        .with_base_seed(cli.seed)
        .with_run_cache(Arc::clone(store) as _, workload);
    if let Some(jobs) = cli.jobs {
        cfg = cfg.with_jobs(jobs);
    }
    cfg
}

fn campaign(
    cli: &Cli,
    app: &AppSpec,
    store: &Arc<CorpusStore>,
    workload: &str,
) -> (Vec<instantcheck::RunHashes>, CheckReport) {
    let build = Arc::clone(&app.build);
    let runs = Checker::new(config(cli, store, workload))
        .collect_runs(&move || build())
        .unwrap_or_else(|e| {
            eprintln!("{}: campaign failed: {e}", cli.app);
            std::process::exit(2);
        });
    let report = CheckReport::from_runs(&runs);
    (runs, report)
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let Some(app) = instantcheck_workloads::by_name(&cli.app, cli.scaled) else {
        eprintln!("unknown app {:?} at this scale", cli.app);
        return ExitCode::from(2);
    };
    let store = match CorpusStore::open(&cli.dir) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cannot open corpus at {}: {e}", cli.dir);
            return ExitCode::from(2);
        }
    };
    let workload = format!("{}:{}", cli.app, if cli.scaled { "scaled" } else { "full" });
    let name = baseline_name(&cli);
    let (runs, report) = campaign(&cli, &app, &store, &workload);
    eprintln!(
        "{}: {} runs, corpus {} hits / {} misses / {} stores / {} quarantined",
        cli.app,
        report.runs,
        store.hits(),
        store.misses(),
        store.stores(),
        store.quarantined(),
    );

    if cli.command == "record" {
        let baseline =
            CampaignBaseline::capture(&name, &workload, Scheme::HwInc, cli.seed, &runs[0], &report);
        if let Err(e) = baseline.save(store.baselines_dir()) {
            eprintln!("cannot save baseline {name}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "recorded baseline {name}: {} checkpoints, {} ndet points, det_at_end={}",
            baseline.reference.len(),
            baseline.ndet_points,
            baseline.det_at_end
        );
        return ExitCode::SUCCESS;
    }

    // check
    let baseline = match CampaignBaseline::load(store.baselines_dir(), &name) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "no baseline {name} in {}: {e} (run `corpus record` first)",
                cli.dir
            );
            return ExitCode::from(2);
        }
    };
    let drifts = baseline.compare(&runs[0], &report);
    let mut failed = false;
    if drifts.is_empty() {
        println!(
            "{name}: no drift ({} checkpoints match)",
            baseline.reference.len()
        );
    } else {
        failed = true;
        println!("{name}: DRIFT detected ({} finding(s))", drifts.len());
        for d in &drifts {
            println!("  {d}");
        }
        // When the fresh campaign disagrees with itself, the full
        // state-diff localization names the structures responsible.
        if let Some(ndet_run) = report.first_ndet_run {
            let diverging = &runs[ndet_run - 1];
            if let Some(seq) = runs[0].first_divergent_checkpoint(diverging) {
                let build = Arc::clone(&app.build);
                match instantcheck::localize(
                    move || build(),
                    cli.seed,
                    cli.seed + (ndet_run as u64 - 1),
                    seq,
                    0xfeed,
                    None,
                ) {
                    Ok(loc) => {
                        println!("  localization at checkpoint {seq} (run 1 vs run {ndet_run}):");
                        for (origin, count) in loc.summary() {
                            println!("    {count:>6} differing word(s): {origin}");
                        }
                    }
                    Err(e) => eprintln!("  localization failed: {e}"),
                }
            }
        }
    }
    if cli.require_hits && store.hits() == 0 {
        eprintln!("{name}: --require-hits set but no run was replayed from the corpus");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
