//! `icd` — the InstantCheck campaign daemon.
//!
//! A long-running front end for the `sched` orchestrator: it accepts
//! batches of campaign submissions as JSON lines, runs them on a
//! bounded worker pool over the registered workloads, multiplexes an
//! optional shared run corpus behind striped locking, and writes one
//! deterministic artifact per campaign. Under load it degrades
//! gracefully — submissions past the queue bound are *shed* with an
//! explicit outcome instead of blocking or dying — and on end of input
//! it drains: every accepted campaign finishes before the process
//! exits.
//!
//! ```text
//! icd [--width N] [--queue-cap N] [--budget N] [--retries N]
//!     [--backoff-ms N] [--deadline-ms N] [--stripes N] [--trace]
//!     [--corpus DIR] [--out DIR] [--batch FILE|-] [--socket PATH]
//! ```
//!
//! Submissions are read, in order, from `--batch FILE` (`-` for
//! stdin), then from `--socket PATH` (a unix listener; clients get a
//! one-line disposition reply per submission, and a literal `drain`
//! line shuts intake down), then — when neither was given — from
//! stdin. Each line is either a bare `CampaignSpec` (the exact JSON
//! `--spec` files use; the id defaults to `c<seq>`) or a wrapper
//! `{"id": "...", "priority": N, "spec": {...}}`. Blank lines and
//! `#` comments are skipped.
//!
//! Artifacts land under `--out` (default `results/icd`): per-campaign
//! `<id>.report.json` (byte-identical to the same spec run alone, at
//! any `--width`) and optional `<id>.trace.jsonl`, plus the batch
//! summary `batch.jsonl` (one result line per submission, in
//! submission order), the deterministic batch span trace
//! `batch.trace.jsonl`, and the wall-clock side of the story in
//! `metrics.json` (queue depth, wait times, shed counts, corpus
//! stripe contention — everything that is *allowed* to vary run to
//! run).
//!
//! Exit status: 0 when every submission completed, 1 when any
//! campaign failed, was invalid, was shed, or a submission line did
//! not parse, 2 on usage or I/O errors.

use std::io::{BufRead, BufReader, Write as _};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use instantcheck::{CampaignSpec, RunCache};
use obs::json::{parse, Value};
use sched::{
    CampaignStatus, Disposition, Orchestrator, OrchestratorConfig, ProgramSource, Resolver,
    Submission,
};

struct IcdCli {
    config: OrchestratorConfig,
    corpus: Option<Arc<corpus::CorpusStore>>,
    out: String,
    batch: Option<String>,
    socket: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: icd [--width N] [--queue-cap N] [--budget N] [--retries N] \
         [--backoff-ms N] [--deadline-ms N] [--stripes N] [--trace] \
         [--corpus DIR] [--out DIR] [--batch FILE|-] [--socket PATH]"
    );
    std::process::exit(2);
}

fn parse_cli() -> IcdCli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = IcdCli {
        config: OrchestratorConfig::default(),
        corpus: None,
        out: "results/icd".to_owned(),
        batch: None,
        socket: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        let num = |i: &mut usize| -> u64 { value(i).parse().unwrap_or_else(|_| usage()) };
        match args[i].as_str() {
            "--width" => cli.config.width = num(&mut i) as usize,
            "--queue-cap" => cli.config.queue_capacity = num(&mut i) as usize,
            "--budget" => cli.config.job_budget = num(&mut i) as usize,
            "--retries" => cli.config.retries = num(&mut i) as u32,
            "--backoff-ms" => cli.config.backoff = Duration::from_millis(num(&mut i)),
            "--deadline-ms" => cli.config.default_deadline_ms = Some(num(&mut i)),
            "--stripes" => cli.config.stripes = num(&mut i) as usize,
            "--trace" => cli.config.trace = true,
            "--corpus" => {
                let dir = value(&mut i);
                match corpus::CorpusStore::open(&dir) {
                    Ok(store) => cli.corpus = Some(Arc::new(store)),
                    Err(e) => {
                        eprintln!("cannot open corpus at {dir}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => cli.out = value(&mut i),
            "--batch" => cli.batch = Some(value(&mut i)),
            "--socket" => cli.socket = Some(value(&mut i)),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }
    cli
}

/// Maps `app:scaled` / `app:full` workload ids onto the registered
/// workload programs — the same ids the `--corpus` store keys runs by.
fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        instantcheck_workloads::by_name(app, scaled).map(|a| a.build)
    })
}

/// One submission line: a bare spec, or `{"id", "priority", "spec"}`.
fn parse_submission(line: &str, seq: usize) -> Result<Submission, String> {
    let v = parse(line)?;
    let (spec_value, id, priority) = match v.get("spec") {
        Some(spec) => {
            let id = v
                .get("id")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("c{seq}"));
            let priority = match v.get("priority") {
                None | Some(Value::Null) => 0,
                Some(Value::Num(raw)) => {
                    raw.parse().map_err(|_| format!("bad priority {raw:?}"))?
                }
                Some(_) => return Err("priority must be a number".to_owned()),
            };
            (spec, id, priority)
        }
        None => (&v, format!("c{seq}"), 0),
    };
    let spec = CampaignSpec::from_value(spec_value)?;
    Ok(Submission::new(id, spec).with_priority(priority))
}

fn disposition_json(id: &str, d: Disposition) -> String {
    let mut out = String::from("{\"id\":");
    obs::json::write_str(&mut out, id);
    match d {
        Disposition::Enqueued => out.push_str(",\"disposition\":\"enqueued\"}"),
        Disposition::Shed(reason) => {
            out.push_str(",\"disposition\":\"shed\",\"reason\":");
            obs::json::write_str(&mut out, reason.label());
            out.push('}');
        }
    }
    out
}

/// Submits every submission line of one reader; returns the number of
/// lines that failed to parse.
fn intake(
    reader: impl BufRead,
    icd: &mut Orchestrator,
    mut reply: Option<&mut dyn std::io::Write>,
) -> std::io::Result<usize> {
    let mut bad = 0;
    for line in reader.lines() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        match parse_submission(text, icd.submitted()) {
            Ok(sub) => {
                let id = sub.id.clone();
                let d = icd.submit(sub);
                if let Disposition::Shed(reason) = d {
                    eprintln!("icd: shed {id:?} ({})", reason.label());
                }
                if let Some(out) = reply.as_deref_mut() {
                    writeln!(out, "{}", disposition_json(&id, d))?;
                }
            }
            Err(e) => {
                bad += 1;
                eprintln!("icd: bad submission line: {e}");
                if let Some(out) = reply.as_deref_mut() {
                    writeln!(out, "{{\"error\":{}}}", {
                        let mut s = String::new();
                        obs::json::write_str(&mut s, &e);
                        s
                    })?;
                }
            }
        }
    }
    Ok(bad)
}

/// Serves the unix socket until a client sends a literal `drain` line.
fn serve_socket(path: &str, icd: &mut Orchestrator) -> std::io::Result<usize> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    eprintln!("icd: listening on {path} (send `drain` to shut down)");
    let mut bad = 0;
    'accept: for stream in listener.incoming() {
        let stream = stream?;
        let mut writer = stream.try_clone()?;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            if text == "drain" {
                writeln!(writer, "{{\"draining\":true}}")?;
                break 'accept;
            }
            match parse_submission(text, icd.submitted()) {
                Ok(sub) => {
                    let id = sub.id.clone();
                    let d = icd.submit(sub);
                    writeln!(writer, "{}", disposition_json(&id, d))?;
                }
                Err(e) => {
                    bad += 1;
                    let mut s = String::new();
                    obs::json::write_str(&mut s, &e);
                    writeln!(writer, "{{\"error\":{s}}}")?;
                }
            }
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(bad)
}

/// A campaign id as a safe artifact file stem.
fn file_stem(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let cli = parse_cli();
    let out_dir = std::path::PathBuf::from(&cli.out);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }

    let cache = cli.corpus.clone().map(|s| s as Arc<dyn RunCache>);
    let mut icd = Orchestrator::new(cli.config.clone(), resolver(), cache);
    icd.start();

    let mut bad_lines = 0;
    let io_result: std::io::Result<()> = (|| {
        if let Some(batch) = &cli.batch {
            if batch == "-" {
                bad_lines += intake(std::io::stdin().lock(), &mut icd, None)?;
            } else {
                let file = std::fs::File::open(batch)?;
                bad_lines += intake(BufReader::new(file), &mut icd, None)?;
            }
        }
        if let Some(path) = &cli.socket {
            bad_lines += serve_socket(path, &mut icd)?;
        } else if cli.batch.is_none() {
            bad_lines += intake(std::io::stdin().lock(), &mut icd, None)?;
        }
        Ok(())
    })();
    if let Err(e) = io_result {
        eprintln!("icd: intake failed: {e}");
        return ExitCode::from(2);
    }

    eprintln!("icd: draining {} submission(s)…", icd.submitted());
    let registry = Arc::clone(icd.registry());
    let results = icd.drain();

    let mut failed = bad_lines > 0;
    let mut summary = String::new();
    for r in &results {
        if r.status != CampaignStatus::Completed {
            failed = true;
        }
        let line = r.summary_json();
        println!("{line}");
        summary.push_str(&line);
        summary.push('\n');
        let stem = file_stem(&r.id);
        if let Some(report) = &r.report_json {
            write_artifact(&out_dir.join(format!("{stem}.report.json")), report);
        }
        if let Some(trace) = &r.trace_jsonl {
            write_artifact(&out_dir.join(format!("{stem}.trace.jsonl")), trace);
        }
    }
    write_artifact(&out_dir.join("batch.jsonl"), &summary);
    write_artifact(
        &out_dir.join("batch.trace.jsonl"),
        &obs::events_to_jsonl(&Orchestrator::batch_trace(&results)),
    );
    write_artifact(
        &out_dir.join("metrics.json"),
        &registry.snapshot().to_json(),
    );

    let completed = results
        .iter()
        .filter(|r| r.status == CampaignStatus::Completed)
        .count();
    eprintln!(
        "icd: {} submitted / {completed} completed / {} shed / {bad_lines} bad line(s)",
        results.len(),
        results.iter().filter(|r| r.shed.is_some()).count(),
    );
    if let Some(store) = &cli.corpus {
        eprintln!(
            "icd: corpus {} hits / {} misses / {} stores",
            store.hits(),
            store.misses(),
            store.stores()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn write_artifact(path: &std::path::Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
