//! `icd` — the InstantCheck campaign daemon.
//!
//! A long-running front end for the `sched` orchestrator: it accepts
//! batches of campaign submissions as JSON lines, runs them on a
//! bounded worker pool over the registered workloads, multiplexes an
//! optional shared run corpus behind a lock-free shared run cache, and
//! writes one
//! deterministic artifact per campaign. Under load it degrades
//! gracefully — submissions past the queue bound (or past a tenant's
//! quota) are *shed* with an explicit outcome instead of blocking or
//! dying — and on shutdown it drains: every accepted campaign finishes
//! before the process exits.
//!
//! ```text
//! icd [--width N] [--queue-cap N] [--budget N] [--retries N]
//!     [--backoff-ms N] [--deadline-ms N] [--trace]
//!     [--tenant-quota N] [--idle-timeout-ms N] [--max-bad-lines N]
//!     [--corpus-dir DIR] [--corpus-segment-bytes N]
//!     [--corpus-max-bytes N] [--corpus-cache-slots N]
//!     [--out DIR] [--batch FILE|-] [--socket PATH]
//!     [--http ADDR] [--heartbeat-ms N]
//! icd --connect PATH [--batch FILE|-]        # client mode
//! ```
//!
//! Storage is one knob set: `--corpus-dir` opens (or creates) a
//! log-structured run corpus through `corpus::Corpus::open`, with
//! `--corpus-segment-bytes` / `--corpus-max-bytes` /
//! `--corpus-cache-slots` sizing its segments, total footprint, and
//! in-memory memo cache. The pre-namespacing spellings `--corpus DIR`
//! and `--cache-slots N` keep working as hidden aliases of
//! `--corpus-dir` and `--corpus-cache-slots`.
//!
//! Submissions are read, in order, from `--batch FILE` (`-` for
//! stdin), then served from `--socket PATH`, then — when neither was
//! given — from stdin. Each line is either a bare `CampaignSpec` (the
//! exact JSON `--spec` files use; the id defaults to `c<seq>`) or a
//! wrapper `{"id": "...", "priority": N, "tenant": "...",
//! "spec": {...}}`. Blank lines and `#` comments are skipped.
//!
//! With `--socket`, `icd` is a **multi-client daemon**: a threaded
//! accept loop gives every connection its own handler with
//! per-connection fault isolation — one client's I/O error, mid-line
//! disconnect, idle stall (`--idle-timeout-ms`), or malformed-line
//! flood (`--max-bad-lines`) drops *that* client, counted in metrics,
//! while the daemon keeps serving. Each submission line gets a
//! one-line disposition reply; a literal `status` line returns a live
//! JSON snapshot (queue depth, in-flight, per-tenant accepted/shed,
//! registry counters); a literal `drain` line — or SIGTERM/SIGINT —
//! stops intake, answers `{"draining":true}` to connected clients,
//! drains the orchestrator, and removes the socket file on every exit
//! path. Binding refuses to clobber a *live* daemon's socket (a probe
//! connect must fail before a stale file is removed).
//!
//! With `--connect`, `icd` is the matching client: it forwards each
//! input line to the daemon, prints one reply line per request, and —
//! when the input ends in an unterminated fragment — sends the bytes
//! and disconnects mid-line, which the daemon must shrug off.
//!
//! With `--http ADDR` (e.g. `127.0.0.1:9090`), the daemon additionally
//! serves a read-only wall-clock **telemetry plane** over plain
//! HTTP/1.1: `GET /status` (the status snapshot), `GET /metrics`
//! (Prometheus text exposition v0.0.4, including the
//! `icd_cache_acquire_seconds`, `icd_cache_wait_seconds`, and
//! `icd_queue_dwell_seconds` wait histograms plus `icd_cache_*`
//! contention counters and, with a corpus attached, `icd_corpus_*`
//! log-structure gauges), and `GET /profile` (full telemetry snapshot
//! with worker lanes plus the shared-cache contention table,
//! consumable by `icprof --profile`). The listener reuses the socket path's
//! per-connection fault-isolation discipline and keeps answering
//! during drain. `--heartbeat-ms N` appends one telemetry snapshot
//! line per interval to `<out>/heartbeat.jsonl` for post-mortems.
//! Telemetry is strictly a side-channel: with all of it enabled, the
//! deterministic artifacts below are byte-identical to a solo run.
//!
//! Artifacts land under `--out` (default `results/icd`), each written
//! atomically (tmp + rename): per-campaign `<id>.report.json`
//! (byte-identical to the same spec run alone, at any `--width` and
//! any client interleaving) and optional `<id>.trace.jsonl`, plus the
//! batch summary `batch.jsonl` (one result line per submission, in
//! submission-sequence order), the deterministic batch span trace
//! `batch.trace.jsonl`, and the wall-clock side of the story in
//! `metrics.json` (shed counts, connection counts — everything that is
//! *allowed* to vary run to run) and `profile.json` (the `/profile`
//! body: wait histograms, worker lanes, cache contention).
//!
//! Exit status: 0 when every submission completed, 1 when any
//! campaign failed, was invalid, was shed, or a submission line did
//! not parse, 2 on usage or I/O errors (including refusing to clobber
//! a live daemon's socket).

use std::io::{BufRead, BufReader, ErrorKind, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use corpus::{Corpus, CorpusOptions};
use instantcheck::CampaignSpec;
use obs::json::{parse, Value};
use obs::Heartbeat;
use sched::{
    CampaignStatus, Disposition, HttpOptions, HttpServer, Orchestrator, OrchestratorConfig,
    ProgramSource, Resolver, Service, Submission,
};

/// How often blocked connection reads wake up to check the drain flag
/// and the idle clock.
const TICK: Duration = Duration::from_millis(50);

struct IcdCli {
    config: OrchestratorConfig,
    corpus_dir: Option<String>,
    corpus_segment_bytes: Option<u64>,
    corpus_max_bytes: Option<u64>,
    corpus_cache_slots: Option<u64>,
    out: String,
    batch: Option<String>,
    socket: Option<String>,
    connect: Option<String>,
    daemon: DaemonOpts,
    /// Address of the read-only HTTP telemetry plane, when enabled.
    http: Option<String>,
    /// Heartbeat snapshot interval, when enabled.
    heartbeat: Option<Duration>,
}

#[derive(Clone)]
struct DaemonOpts {
    /// Disconnect a client that has sent nothing for this long.
    idle_timeout: Duration,
    /// Disconnect a client after this many malformed lines.
    max_bad_lines: usize,
}

impl Default for DaemonOpts {
    fn default() -> Self {
        DaemonOpts {
            idle_timeout: Duration::from_millis(30_000),
            max_bad_lines: 100,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: icd [--width N] [--queue-cap N] [--budget N] [--retries N] \
         [--backoff-ms N] [--deadline-ms N] [--trace] \
         [--tenant-quota N] [--idle-timeout-ms N] [--max-bad-lines N] \
         [--corpus-dir DIR] [--corpus-segment-bytes N] [--corpus-max-bytes N] \
         [--corpus-cache-slots N] [--out DIR] [--batch FILE|-] [--socket PATH] \
         [--http ADDR] [--heartbeat-ms N]\n\
         \x20      icd --connect PATH [--batch FILE|-]"
    );
    std::process::exit(2);
}

fn parse_cli() -> IcdCli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = IcdCli {
        config: OrchestratorConfig::default(),
        corpus_dir: None,
        corpus_segment_bytes: None,
        corpus_max_bytes: None,
        corpus_cache_slots: None,
        out: "results/icd".to_owned(),
        batch: None,
        socket: None,
        connect: None,
        daemon: DaemonOpts::default(),
        http: None,
        heartbeat: None,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        let num = |i: &mut usize| -> u64 { value(i).parse().unwrap_or_else(|_| usage()) };
        match args[i].as_str() {
            "--width" => cli.config.width = num(&mut i) as usize,
            "--queue-cap" => cli.config.queue_capacity = num(&mut i) as usize,
            "--budget" => cli.config.job_budget = num(&mut i) as usize,
            "--retries" => cli.config.retries = num(&mut i) as u32,
            "--backoff-ms" => cli.config.backoff = Duration::from_millis(num(&mut i)),
            "--deadline-ms" => cli.config.default_deadline_ms = Some(num(&mut i)),
            "--trace" => cli.config.trace = true,
            "--tenant-quota" => cli.config.tenant_quota = Some(num(&mut i)),
            "--idle-timeout-ms" => {
                cli.daemon.idle_timeout = Duration::from_millis(num(&mut i).max(1));
            }
            "--max-bad-lines" => cli.daemon.max_bad_lines = num(&mut i) as usize,
            // `--corpus` and `--cache-slots` predate the namespaced
            // storage flags; both spellings feed the same options.
            "--corpus-dir" | "--corpus" => cli.corpus_dir = Some(value(&mut i)),
            "--corpus-segment-bytes" => cli.corpus_segment_bytes = Some(num(&mut i)),
            "--corpus-max-bytes" => cli.corpus_max_bytes = Some(num(&mut i)),
            "--corpus-cache-slots" | "--cache-slots" => {
                cli.corpus_cache_slots = Some(num(&mut i));
            }
            "--out" => cli.out = value(&mut i),
            "--batch" => cli.batch = Some(value(&mut i)),
            "--socket" => cli.socket = Some(value(&mut i)),
            "--connect" => cli.connect = Some(value(&mut i)),
            "--http" => cli.http = Some(value(&mut i)),
            "--heartbeat-ms" => {
                cli.heartbeat = Some(Duration::from_millis(num(&mut i).max(1)));
            }
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }
    cli
}

/// Maps `app:scaled` / `app:full` workload ids onto the registered
/// workload programs — the same ids the `--corpus` store keys runs by.
fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        instantcheck_workloads::by_name(app, scaled).map(|a| a.build)
    })
}

/// One submission line: a bare spec, or `{"id", "priority", "tenant",
/// "spec"}`. An absent id is left empty — the service fills in
/// `c<seq>` under its intake lock, so concurrent clients cannot race
/// the default.
fn parse_submission(line: &str) -> Result<Submission, String> {
    let v = parse(line)?;
    let (spec_value, id, priority, tenant) = match v.get("spec") {
        Some(spec) => {
            let id = v
                .get("id")
                .and_then(Value::as_str)
                .map(str::to_owned)
                .unwrap_or_default();
            let priority = match v.get("priority") {
                None | Some(Value::Null) => 0,
                Some(Value::Num(raw)) => {
                    raw.parse().map_err(|_| format!("bad priority {raw:?}"))?
                }
                Some(_) => return Err("priority must be a number".to_owned()),
            };
            let tenant = match v.get("tenant") {
                None | Some(Value::Null) => None,
                Some(Value::Str(t)) => Some(t.clone()),
                Some(_) => return Err("tenant must be a string".to_owned()),
            };
            (spec, id, priority, tenant)
        }
        None => (&v, String::new(), 0, None),
    };
    let spec = CampaignSpec::from_value(spec_value)?;
    let mut sub = Submission::new(id, spec).with_priority(priority);
    sub.tenant = tenant;
    Ok(sub)
}

fn disposition_json(id: &str, d: Disposition) -> String {
    let mut out = String::from("{\"id\":");
    obs::json::write_str(&mut out, id);
    match d {
        Disposition::Enqueued => out.push_str(",\"disposition\":\"enqueued\"}"),
        Disposition::Shed(reason) => {
            out.push_str(",\"disposition\":\"shed\",\"reason\":");
            obs::json::write_str(&mut out, reason.label());
            out.push('}');
        }
    }
    out
}

fn error_json(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    obs::json::write_str(&mut out, message);
    out.push('}');
    out
}

/// Submits every submission line of one reader (the single-client
/// batch/stdin path); counts parse failures in `icd.bad_lines`.
fn intake(reader: impl BufRead, svc: &Service) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        match parse_submission(text) {
            Ok(sub) => {
                let (id, d) = svc.submit(sub);
                if let Disposition::Shed(reason) = d {
                    eprintln!("icd: shed {id:?} ({})", reason.label());
                }
            }
            Err(e) => {
                svc.registry().add("icd.bad_lines", 1);
                eprintln!("icd: bad submission line: {e}");
            }
        }
    }
    Ok(())
}

/// The flag-based signal hook: SIGTERM/SIGINT set an atomic the accept
/// loop polls, turning an operator kill into a graceful drain. Uses
/// the libc `signal` entry point the Rust runtime already links — no
/// external crates.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the handler for SIGTERM and SIGINT (idempotent).
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Removes the socket path on drop, so the file disappears on every
/// exit path — normal drain, signal, or panic unwind.
struct SocketGuard {
    path: Option<PathBuf>,
}

impl SocketGuard {
    fn new(path: &str) -> Self {
        SocketGuard {
            path: Some(PathBuf::from(path)),
        }
    }

    fn remove(&mut self) {
        if let Some(path) = self.path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        self.remove();
    }
}

/// Binds the daemon socket, refusing to clobber a *live* daemon: if
/// the path exists and a probe connect succeeds, someone is serving it
/// and we bail out; only a dead (connection-refused) leftover is
/// removed and re-bound.
fn bind_socket(path: &str) -> std::io::Result<UnixListener> {
    if Path::new(path).exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(std::io::Error::new(
                    ErrorKind::AddrInUse,
                    format!("{path}: a live daemon is already listening"),
                ));
            }
            Err(_) => {
                // Stale socket from a dead process — safe to reclaim.
                std::fs::remove_file(path)?;
            }
        }
    }
    UnixListener::bind(path)
}

/// Why one client connection ended; each variant maps to a metric so
/// operators can see *how* clients leave.
enum ConnClose {
    /// Clean end of stream after a final newline.
    Eof,
    /// The client vanished mid-line; the partial line is dropped.
    PartialEof,
    /// No bytes for `--idle-timeout-ms`.
    IdleTimeout,
    /// The daemon is draining; the client was told.
    Draining,
    /// Too many malformed lines; the client was disconnected.
    Kicked,
    /// A transport error on this connection only.
    Error(std::io::Error),
}

/// Serves one client connection until it ends. All failure modes stay
/// on this connection: returning `ConnClose` never unwinds into the
/// accept loop.
fn serve_connection(stream: UnixStream, svc: &Service, opts: &DaemonOpts) -> ConnClose {
    if let Err(e) = stream.set_read_timeout(Some(TICK)) {
        return ConnClose::Error(e);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => return ConnClose::Error(e),
    };
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut bad_lines = 0usize;
    let mut idle = Duration::ZERO;
    loop {
        buf.clear();
        // Accumulate one full line, surviving read timeouts: each tick
        // checks the drain flag and the idle clock, so a stalled client
        // cannot pin this handler forever.
        loop {
            let before = buf.len();
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => {
                    return if buf.is_empty() {
                        ConnClose::Eof
                    } else {
                        ConnClose::PartialEof
                    };
                }
                Ok(_) if buf.last() == Some(&b'\n') => break,
                // `read_until` returns early only at the delimiter or
                // EOF; data without a trailing newline means the
                // stream ended mid-line.
                Ok(_) => return ConnClose::PartialEof,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if svc.is_draining() {
                        let _ = writeln!(writer, "{{\"draining\":true}}");
                        return ConnClose::Draining;
                    }
                    if buf.len() == before {
                        idle += TICK;
                        if idle >= opts.idle_timeout {
                            let _ = writeln!(writer, "{}", error_json("idle timeout"));
                            return ConnClose::IdleTimeout;
                        }
                    } else {
                        idle = Duration::ZERO;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return ConnClose::Error(e),
            }
        }
        idle = Duration::ZERO;
        let line = String::from_utf8_lossy(&buf);
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let reply = match text {
            "status" => svc.status_json(),
            "drain" => {
                svc.begin_drain();
                "{\"draining\":true}".to_owned()
            }
            _ => match parse_submission(text) {
                Ok(sub) => {
                    let (id, d) = svc.submit(sub);
                    disposition_json(&id, d)
                }
                Err(e) => {
                    bad_lines += 1;
                    svc.registry().add("icd.bad_lines", 1);
                    error_json(&e)
                }
            },
        };
        if let Err(e) = writeln!(writer, "{reply}") {
            return ConnClose::Error(e);
        }
        if text == "drain" {
            return ConnClose::Draining;
        }
        if bad_lines >= opts.max_bad_lines {
            let _ = writeln!(writer, "{}", error_json("too many malformed lines"));
            return ConnClose::Kicked;
        }
    }
}

/// One handler thread per connection: serve it, then fold its fate
/// into the metrics. Nothing a client does propagates past here.
fn handle_client(stream: UnixStream, svc: &Arc<Service>, opts: &DaemonOpts, conn: u64) {
    let reg = Arc::clone(svc.registry());
    let close = serve_connection(stream, svc, opts);
    let label = match close {
        ConnClose::Eof => "eof",
        ConnClose::PartialEof => "partial",
        ConnClose::IdleTimeout => "idle-timeout",
        ConnClose::Draining => "draining",
        ConnClose::Kicked => "kicked",
        ConnClose::Error(e) => {
            eprintln!("icd: connection {conn}: {e}");
            "error"
        }
    };
    reg.add("icd.conn.closed", 1);
    reg.add(&format!("icd.conn.closed.{label}"), 1);
}

/// The daemon accept loop: non-blocking accept so SIGTERM/SIGINT and
/// socket-initiated drains are noticed within one tick, one handler
/// thread per connection, and per-connection fault isolation — accept
/// errors are counted and served around, never fatal.
fn serve_daemon(path: &str, svc: &Arc<Service>, opts: &DaemonOpts) -> std::io::Result<()> {
    signals::install();
    let listener = bind_socket(path)?;
    let mut guard = SocketGuard::new(path);
    listener.set_nonblocking(true)?;
    eprintln!("icd: serving {path} (lines: submissions, `status`, `drain`; SIGTERM/SIGINT drain)");
    let reg = Arc::clone(svc.registry());
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn = 0u64;
    while !signals::requested() && !svc.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                reg.add("icd.conn.opened", 1);
                let svc = Arc::clone(svc);
                let opts = opts.clone();
                let conn = next_conn;
                next_conn += 1;
                handlers.push(std::thread::spawn(move || {
                    handle_client(stream, &svc, &opts, conn);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(TICK),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                reg.add("icd.conn.accept_errors", 1);
                eprintln!("icd: accept failed: {e}");
                std::thread::sleep(TICK);
            }
        }
    }
    if signals::requested() {
        svc.begin_drain();
        eprintln!("icd: shutdown signal received, draining");
    }
    // Unlink before joining the handlers so new connects fail fast
    // instead of queueing in a backlog nobody will ever accept.
    drop(listener);
    guard.remove();
    for h in handlers {
        let _ = h.join();
    }
    Ok(())
}

/// Client mode: forward each input line to a daemon, print one reply
/// line per request. A final unterminated fragment is sent as raw
/// bytes followed by a disconnect — the deliberate mid-line-drop probe
/// the daemon-mode tests and CI use.
fn run_client(path: &str, batch: Option<&str>) -> ExitCode {
    let mut input = Vec::new();
    let read = match batch {
        Some("-") | None => std::io::stdin().lock().read_to_end(&mut input),
        Some(file) => std::fs::File::open(file).and_then(|mut f| f.read_to_end(&mut input)),
    };
    if let Err(e) = read {
        eprintln!("icd: cannot read input: {e}");
        return ExitCode::from(2);
    }
    let stream = match UnixStream::connect(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("icd: cannot connect to {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("icd: {e}");
            return ExitCode::from(2);
        }
    };
    let mut reader = BufReader::new(stream);
    let mut degraded = false;
    let mut rest: &[u8] = &input;
    while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
        let (line, tail) = rest.split_at(nl + 1);
        rest = tail;
        let text = String::from_utf8_lossy(&line[..nl]);
        let text = text.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let io: std::io::Result<String> = (|| {
            writer.write_all(text.as_bytes())?;
            writer.write_all(b"\n")?;
            let mut reply = String::new();
            reader.read_line(&mut reply)?;
            Ok(reply)
        })();
        match io {
            Ok(reply) => {
                let reply = reply.trim_end();
                println!("{reply}");
                if reply.contains("\"error\"") || reply.contains("\"shed\"") {
                    degraded = true;
                }
            }
            Err(e) => {
                eprintln!("icd: connection lost: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !rest.is_empty() {
        // Unterminated fragment: send it and hang up mid-line.
        let _ = writer.write_all(rest);
        let _ = writer.flush();
        eprintln!(
            "icd: sent {} unterminated byte(s) and disconnected",
            rest.len()
        );
    }
    if degraded {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// A campaign id as a safe artifact file stem.
fn file_stem(id: &str) -> String {
    id.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let cli = parse_cli();
    if let Some(path) = &cli.connect {
        return run_client(path, cli.batch.as_deref());
    }
    let out_dir = std::path::PathBuf::from(&cli.out);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }

    let corpus: Option<Arc<Corpus>> = match &cli.corpus_dir {
        Some(dir) => {
            let mut options = CorpusOptions::at(dir);
            if let Some(n) = cli.corpus_segment_bytes {
                options = options.segment_bytes(n);
            }
            if let Some(n) = cli.corpus_max_bytes {
                options = options.max_bytes(n);
            }
            if let Some(n) = cli.corpus_cache_slots {
                options = options.cache_slots(n as usize);
            }
            match options.open() {
                Ok(corpus) => Some(Arc::new(corpus)),
                Err(e) => {
                    eprintln!("icd: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let svc = Arc::new(Service::new(Orchestrator::new(
        cli.config.clone(),
        resolver(),
        corpus.clone(),
    )));

    // The wall-clock telemetry plane: read-only, so it starts before
    // intake and keeps serving through the drain.
    let mut http_server = match &cli.http {
        Some(addr) => {
            match HttpServer::bind(addr.as_str(), Arc::clone(&svc), HttpOptions::default()) {
                Ok(server) => {
                    eprintln!(
                        "icd: telemetry on http://{} (/status /metrics /profile)",
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("icd: cannot bind http {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let mut heartbeat = match cli.heartbeat {
        Some(interval) => {
            let path = out_dir.join("heartbeat.jsonl");
            match Heartbeat::start(Arc::clone(svc.telemetry()), path.clone(), interval) {
                Ok(hb) => Some(hb),
                Err(e) => {
                    eprintln!("icd: cannot start heartbeat at {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };

    let io_result: std::io::Result<()> = (|| {
        if let Some(batch) = &cli.batch {
            if batch == "-" {
                intake(std::io::stdin().lock(), &svc)?;
            } else {
                let file = std::fs::File::open(batch)?;
                intake(BufReader::new(file), &svc)?;
            }
        }
        if let Some(path) = &cli.socket {
            serve_daemon(path, &svc, &cli.daemon)?;
        } else if cli.batch.is_none() {
            intake(std::io::stdin().lock(), &svc)?;
        }
        Ok(())
    })();
    if let Err(e) = io_result {
        eprintln!("icd: intake failed: {e}");
        return ExitCode::from(2);
    }

    eprintln!("icd: draining {} submission(s)…", svc.submitted());
    let registry = Arc::clone(svc.registry());
    let results = svc.drain();

    let bad_lines = registry.counter("icd.bad_lines").get();
    let mut failed = bad_lines > 0;
    let mut summary = String::new();
    for r in &results {
        if r.status != CampaignStatus::Completed {
            failed = true;
        }
        let line = r.summary_json();
        println!("{line}");
        summary.push_str(&line);
        summary.push('\n');
        let stem = file_stem(&r.id);
        if let Some(report) = &r.report_json {
            write_artifact(&out_dir.join(format!("{stem}.report.json")), report);
        }
        if let Some(trace) = &r.trace_jsonl {
            write_artifact(&out_dir.join(format!("{stem}.trace.jsonl")), trace);
        }
    }
    write_artifact(&out_dir.join("batch.jsonl"), &summary);
    write_artifact(
        &out_dir.join("batch.trace.jsonl"),
        &obs::events_to_jsonl(&Orchestrator::batch_trace(&results)),
    );
    write_artifact(
        &out_dir.join("metrics.json"),
        &registry.snapshot().to_json(),
    );
    // The wall-clock story (queue dwell, cache waits, worker lanes);
    // same body `/profile` serves. Written before the HTTP listener
    // stops so a final scrape and the artifact agree on schema.
    write_artifact(&out_dir.join("profile.json"), &svc.profile_json());
    if let Some(hb) = &mut heartbeat {
        hb.stop();
    }
    if let Some(server) = &mut http_server {
        server.shutdown();
    }

    let completed = results
        .iter()
        .filter(|r| r.status == CampaignStatus::Completed)
        .count();
    eprintln!(
        "icd: {} submitted / {completed} completed / {} shed / {bad_lines} bad line(s)",
        results.len(),
        results.iter().filter(|r| r.shed.is_some()).count(),
    );
    if let Some(corpus) = &corpus {
        eprintln!(
            "icd: corpus {} hits / {} misses / {} stores",
            corpus.hits(),
            corpus.misses(),
            corpus.stores()
        );
        if let Some(s) = corpus.log_stats() {
            eprintln!(
                "icd: corpus {} segment(s), {} live record(s), {} live / {} garbage byte(s), \
                 {} compaction(s)",
                s.segments, s.live_records, s.live_bytes, s.garbage_bytes, s.compactions
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Writes one artifact atomically (tmp + rename in the target
/// directory), so a crash mid-write can never leave a truncated file
/// that a later byte-compare reads as drift.
fn write_artifact(path: &std::path::Path, contents: &str) {
    let result = (|| -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp-{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    })();
    match result {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
