//! §6.2 demonstration: systematic-testing state pruning. Exhaustively
//! explores small programs and reports how many executions a
//! happens-before prune (CHESS) keeps versus a state-hash prune
//! (InstantCheck) — the hash partition is coarser, so it prunes more.

use instantcheck_bench::{HarnessOpts, Reporter};
use instantcheck_explorer::systematic::{explore, explore_with_state_pruning};
use tsim::{Program, ProgramBuilder, ValKind};

fn commuting(n: usize) -> impl Fn() -> Program {
    move || {
        let mut b = ProgramBuilder::new(n);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..n as u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + 10 * (t + 1));
                ctx.unlock(lock);
            });
        }
        b.build()
    }
}

fn last_writer(n: usize) -> impl Fn() -> Program {
    move || {
        let mut b = ProgramBuilder::new(n);
        let g = b.global("G", ValKind::U64, 1);
        let lock = b.mutex();
        for t in 0..n as u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                ctx.store(g.at(0), t + 1);
                ctx.unlock(lock);
            });
        }
        b.build()
    }
}

fn two_phase_commuting(n: usize) -> impl Fn() -> Program {
    move || {
        let mut b = ProgramBuilder::new(n);
        let g = b.global("G", ValKind::U64, 2);
        let bar = b.barrier();
        let lock = b.mutex();
        for t in 0..n as u64 {
            b.thread(move |ctx| {
                ctx.lock(lock);
                let v = ctx.load(g.at(0));
                ctx.store(g.at(0), v + 10 * (t + 1));
                ctx.unlock(lock);
                ctx.barrier(bar);
                ctx.lock(lock);
                let v = ctx.load(g.at(1));
                ctx.store(g.at(1), v + 100 * (t + 1));
                ctx.unlock(lock);
            });
        }
        b.build()
    }
}

fn main() {
    let _opts = HarnessOpts::from_args();
    let r = Reporter::new("pruning");
    r.line(format!(
        "{:<28} {:>11} {:>12} {:>12} {:>10}",
        "program", "executions", "HB classes", "state seqs", "states"
    ));
    r.line("-".repeat(78));
    let mut rows = Vec::new();
    for (name, stats) in [
        (
            "figure1 (2 commuting)",
            explore(commuting(2), 200_000).unwrap(),
        ),
        (
            "3 commuting threads",
            explore(commuting(3), 200_000).unwrap(),
        ),
        (
            "2 last-writer threads",
            explore(last_writer(2), 200_000).unwrap(),
        ),
        (
            "3 last-writer threads",
            explore(last_writer(3), 200_000).unwrap(),
        ),
    ] {
        r.line(format!(
            "{:<28} {:>11} {:>12} {:>12} {:>10}{}",
            name,
            stats.executions,
            stats.distinct_hb_classes,
            stats.distinct_state_sequences,
            stats.distinct_final_states,
            if stats.truncated { " (truncated)" } else { "" },
        ));
        rows.push((name.to_owned(), stats));
    }
    r.line("\nState-hash pruning explores at most `states`; a happens-before");
    r.line("prune must still explore `HB classes` (CHESS); the gap is the");
    r.line("speedup InstantCheck enables (§6.2).\n");

    // Second panel: an actual state-pruned search on a barrier-structured
    // program, segment by segment, versus exhaustive enumeration.
    r.line(format!(
        "{:<34} {:>16} {:>16} {:>8}",
        "two-phase commuting program", "runs (exhaustive)", "runs (pruned)", "states"
    ));
    r.line(format!("{:-<78}", ""));
    for n in [2usize, 3] {
        let full = explore(two_phase_commuting(n), 4_000_000).unwrap();
        let pruned = explore_with_state_pruning(two_phase_commuting(n), 4_000_000).unwrap();
        assert_eq!(full.distinct_final_states, pruned.distinct_final_states);
        r.line(format!(
            "{:<34} {:>17} {:>16} {:>8}",
            format!("{n} threads x 2 phases"),
            full.executions,
            pruned.executions,
            pruned.distinct_final_states,
        ));
    }
    r.line("\nPruning at barrier checkpoints by state hash turns the multiplicative");
    r.line("(phase1 x phase2) schedule tree into an additive search.");
    r.artifact(
        &rows
            .iter()
            .map(|(n, s)| {
                (
                    n.clone(),
                    s.executions,
                    s.distinct_hb_classes,
                    s.distinct_final_states,
                )
            })
            .collect::<Vec<_>>(),
    );
}
