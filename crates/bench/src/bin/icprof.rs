//! Campaign-trace profiler. Loads a JSONL event trace recorded by a
//! traced campaign (pass `--trace` to the harness binaries), prints the
//! per-run profile — steps, instruction attribution per scheme, MHM hit
//! rates, the fault/failure timeline, divergences — and optionally
//! exports Chrome trace-event JSON for `chrome://tracing` / Perfetto.
//!
//! Usage:
//!
//! ```text
//! icprof results/fig5-canneal.trace.jsonl [--chrome out.json]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut trace_path: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--chrome" => {
                i += 1;
                match args.get(i) {
                    Some(p) => chrome_out = Some(p.clone()),
                    None => {
                        eprintln!("--chrome requires an output path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: icprof <trace.jsonl> [--chrome out.json]");
                return ExitCode::SUCCESS;
            }
            other if trace_path.is_none() => trace_path = Some(other.to_owned()),
            other => {
                eprintln!("unexpected argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = trace_path else {
        eprintln!("usage: icprof <trace.jsonl> [--chrome out.json]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match obs::parse_jsonl(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("could not parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let profile = obs::CampaignProfile::from_events(&events);
    print!("{}", profile.render());
    if let Some(out) = chrome_out {
        if let Err(e) = std::fs::write(&out, obs::chrome_trace(&events)) {
            eprintln!("could not write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}
