//! Campaign-trace profiler. Loads a JSONL event trace recorded by a
//! traced campaign (pass `--trace` to the harness binaries), prints the
//! per-run profile — steps, instruction attribution per scheme, MHM hit
//! rates, the fault/failure timeline, divergences — and optionally
//! exports Chrome trace-event JSON for `chrome://tracing` / Perfetto.
//!
//! With `--profile FILE` (the daemon's `profile.json` artifact or a
//! saved `GET /profile` body) it additionally prints the wall-clock
//! side: wait-histogram quantiles (queue dwell, cache acquire/wait,
//! worker busy/idle) and the shared-cache contention table — probe
//! lengths, CAS retries, in-flight waits, arena occupancy. When
//! `--chrome` is also given, per-worker lanes from the
//! profile ride along in the export as their own process, so the
//! simulated-step tracks and the wall-clock worker timeline land in
//! one Perfetto view.
//!
//! Usage:
//!
//! ```text
//! icprof results/fig5-canneal.trace.jsonl [--chrome out.json]
//! icprof [trace.jsonl] --profile results/icd/profile.json [--chrome out.json]
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;

use obs::telemetry::TelemetrySnapshot;

fn seconds(ns: u64) -> String {
    format!("{:.6}s", ns as f64 / 1e9)
}

/// Renders the wall-clock profile: histogram quantiles, gauges,
/// counters, and the contention table.
fn render_profile(v: &obs::json::Value) -> Result<String, String> {
    // Accept both the `/profile` body ({"telemetry":…,"cache":…})
    // and a bare telemetry snapshot (a heartbeat line).
    let telemetry_value = v.get("telemetry").unwrap_or(v);
    let snap = TelemetrySnapshot::from_json(telemetry_value)?;
    let mut out = String::new();
    let _ = writeln!(out, "== wall-clock telemetry ==");
    let _ = writeln!(out, "uptime: {}", seconds(snap.uptime_ns));
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "\nwait/latency histograms (wall clock):");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12} {:>12}",
            "name", "count", "p50<=", "p95<=", "p99<="
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>12}",
                name,
                h.count,
                seconds(h.p50()),
                seconds(h.p95()),
                seconds(h.p99()),
            );
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges:");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<28} {value}");
        }
    }

    // The shared-cache contention table: the evidence base for deciding
    // whether the lock-free run cache scales — long probes, CAS-retry
    // storms, or heavy in-flight waiting all show up here.
    if let Some(cache @ obs::json::Value::Obj(_)) = v.get("cache") {
        let field =
            |k: &str| -> u64 { cache.get(k).and_then(obs::json::Value::as_u64).unwrap_or(0) };
        let (probes, steps) = (field("probes"), field("probe_steps"));
        let mean_probe = if probes == 0 {
            0.0
        } else {
            steps as f64 / probes as f64
        };
        let _ = writeln!(out, "\n== shared run cache ==");
        let _ = writeln!(
            out,
            "  occupancy: {} published / {} in-flight / {} abandoned of {} slots",
            field("published"),
            field("in_flight"),
            field("abandoned"),
            field("capacity")
        );
        let _ = writeln!(
            out,
            "  probes: {probes} sequence(s), mean length {mean_probe:.2} slot(s)"
        );
        let _ = writeln!(
            out,
            "  contention: {} CAS retr{}, {} in-flight wait(s) totalling {}",
            field("cas_retries"),
            if field("cas_retries") == 1 {
                "y"
            } else {
                "ies"
            },
            field("waits"),
            seconds(field("wait_ns"))
        );
        let _ = writeln!(out, "  arena-full fallbacks: {}", field("arena_full"));
    }
    if !snap.lanes.is_empty() || snap.dropped_lanes > 0 {
        let _ = writeln!(
            out,
            "\nworker lanes: {} span(s) retained, {} dropped",
            snap.lanes.len(),
            snap.dropped_lanes
        );
    }
    Ok(out)
}

fn usage() -> ExitCode {
    eprintln!("usage: icprof [trace.jsonl] [--profile profile.json] [--chrome out.json]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut trace_path: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--chrome" => {
                i += 1;
                match args.get(i) {
                    Some(p) => chrome_out = Some(p.clone()),
                    None => {
                        eprintln!("--chrome requires an output path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--profile" => {
                i += 1;
                match args.get(i) {
                    Some(p) => profile_path = Some(p.clone()),
                    None => {
                        eprintln!("--profile requires a profile.json path");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_owned());
            }
            other => {
                eprintln!("unexpected argument {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if trace_path.is_none() && profile_path.is_none() {
        return usage();
    }

    let mut events = Vec::new();
    if let Some(path) = &trace_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        events = match obs::parse_jsonl(&text) {
            Ok(ev) => ev,
            Err(e) => {
                eprintln!("could not parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let profile = obs::CampaignProfile::from_events(&events);
        print!("{}", profile.render());
    }

    let mut lanes = Vec::new();
    if let Some(path) = &profile_path {
        let rendered = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| obs::json::parse(&text))
            .and_then(|v| {
                let telemetry_value = v.get("telemetry").cloned().unwrap_or_else(|| v.clone());
                let snap = TelemetrySnapshot::from_json(&telemetry_value)?;
                lanes = snap.lanes.clone();
                render_profile(&v)
            });
        match rendered {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("could not read profile {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(out) = chrome_out {
        if let Err(e) = std::fs::write(&out, obs::chrome_lanes(&events, &lanes)) {
            eprintln!("could not write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    }
    ExitCode::SUCCESS
}
