//! Shared machinery for the experiment harness binaries.
//!
//! One binary per paper table/figure (see `src/bin/`): `table1`,
//! `table2`, `fig5`, `fig6`, `fig8`, `race_filter`, `pruning`,
//! `replay_assist`, plus the `icprof` trace profiler. Each accepts
//! `--scaled` (miniature workloads for a quick pass) and `--runs N`,
//! prints a human-readable table to stdout, and writes a JSON artifact
//! under `results/`. With `--trace`, campaign binaries also write a
//! deterministic event trace (`results/<app>.trace.jsonl`) that
//! `icprof` can profile or convert for `chrome://tracing`; with
//! `--cache-model`, L1/MHM hit rates are measured and included in the
//! JSON artifacts; with `--corpus DIR`, completed runs are recorded
//! to (and replayed from) a persistent content-addressed store — see
//! the `corpus` crate and the `corpus` binary, which records and
//! drift-checks campaign baselines against that store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use adhash::FpRound;
use instantcheck::{
    characterize, geometric_mean, measure_overhead, CampaignSpec, Characterization, CheckerConfig,
    FailurePolicy, IgnoreSpec, Scheme,
};
use instantcheck_workloads::AppSpec;

pub mod cli;
pub mod json;
pub mod timing;

use json::{write_field, ToJson};

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Use miniature workloads.
    pub scaled: bool,
    /// Runs per campaign (the paper uses 30).
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Checking scheme (the harness default is HW-InstantCheck, as in
    /// the paper's determinism experiments; the software schemes agree
    /// on all verdicts).
    pub scheme: Scheme,
    /// What a campaign does when one of its runs fails.
    pub policy: FailurePolicy,
    /// Record per-campaign event traces under `results/`.
    pub trace: bool,
    /// Model L1/MHM cache behavior during the campaigns.
    pub cache_model: bool,
    /// Worker threads per campaign (`None` = the machine's available
    /// parallelism; the report is identical either way).
    pub jobs: Option<usize>,
    /// Persistent run corpus (`--corpus-dir DIR`, historically
    /// `--corpus DIR`): completed runs are looked up in, and recorded
    /// to, the log-structured store, so repeated harness invocations
    /// replay instead of re-simulating. Warm campaigns produce
    /// byte-identical reports (the determinism verdicts cannot drift
    /// with cache state), so tables and figures are unaffected.
    pub corpus: Option<std::sync::Arc<corpus::Corpus>>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scaled: false,
            runs: 30,
            seed: 1,
            scheme: Scheme::HwInc,
            policy: FailurePolicy::Abort,
            trace: false,
            cache_model: false,
            jobs: None,
            corpus: None,
        }
    }
}

impl HarnessOpts {
    /// Parses the shared spec flags (see [`cli::parse_spec`]) from
    /// `std::env::args`: `--scaled`, `--runs N`, `--seed N`,
    /// `--scheme S`, `--jobs N`, `--policy P` (`abort`/`skip`/
    /// `retry`/`retry-same`), `--trace`, `--cache-model`,
    /// `--corpus DIR`, `--spec FILE`, and the rest of the spec fields.
    /// Unknown arguments are reported and ignored; malformed values
    /// exit with status 2.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match cli::parse_spec(&args) {
            Ok(sa) => {
                for other in &sa.rest {
                    eprintln!("ignoring unknown argument {other}");
                }
                HarnessOpts::from_spec_args(&sa)
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Builds harness options from a parsed spec command line.
    pub fn from_spec_args(sa: &cli::SpecArgs) -> Self {
        HarnessOpts {
            scaled: sa.scaled,
            runs: sa.spec.runs,
            seed: sa.spec.base_seed,
            scheme: sa.spec.scheme,
            policy: sa.spec.policy,
            trace: sa.trace,
            cache_model: sa.spec.cache_model,
            jobs: sa.spec.jobs,
            corpus: sa.corpus.clone(),
        }
    }

    /// The workload registry for the chosen scale.
    pub fn apps(&self) -> Vec<AppSpec> {
        if self.scaled {
            instantcheck_workloads::all_scaled()
        } else {
            instantcheck_workloads::all()
        }
    }

    /// The seeded-bug registry for the chosen scale.
    pub fn seeded(&self) -> Vec<AppSpec> {
        if self.scaled {
            instantcheck_workloads::seeded_bugs_scaled()
        } else {
            instantcheck_workloads::seeded_bugs()
        }
    }

    /// The campaign template as a spec, workload unset — the
    /// table/figure binaries stamp per-app ids via
    /// [`spec_for`](Self::spec_for).
    pub fn base_spec(&self) -> CampaignSpec {
        let mut spec = CampaignSpec::new("", self.scheme)
            .with_runs(self.runs)
            .with_base_seed(self.seed)
            .with_policy(self.policy);
        spec.cache_model = self.cache_model;
        spec.jobs = self.jobs;
        spec
    }

    /// The campaign spec for one registered app —
    /// [`base_spec`](Self::base_spec) stamped with the app's
    /// [`workload_id`](Self::workload_id). This is exactly what the
    /// `icd` orchestrator would run for the same flags.
    pub fn spec_for(&self, app_name: &str) -> CampaignSpec {
        let mut spec = self.base_spec();
        spec.workload = self.workload_id(app_name);
        spec
    }

    /// The checker template, built from [`base_spec`](Self::base_spec).
    pub fn template(&self) -> CheckerConfig {
        CheckerConfig::from_spec(&self.base_spec())
    }

    /// A fresh in-memory trace sink for one campaign, when `--trace`
    /// was passed.
    pub fn trace_sink(&self) -> Option<std::sync::Arc<obs::MemorySink>> {
        self.trace
            .then(|| std::sync::Arc::new(obs::MemorySink::new()))
    }

    /// The corpus workload id of one registered app at the chosen
    /// scale. The registry guarantees `(name, scale)` pins the built
    /// program exactly, which is the
    /// [`RunKey::workload`](instantcheck::RunKey) contract.
    pub fn workload_id(&self, app_name: &str) -> String {
        format!("{app_name}:{}", if self.scaled { "scaled" } else { "full" })
    }

    /// Attaches the `--corpus-dir` store (when present) to a campaign
    /// config, keyed by the app's [`workload_id`](Self::workload_id).
    pub fn with_corpus(&self, cfg: CheckerConfig, app_name: &str) -> CheckerConfig {
        match &self.corpus {
            Some(corpus) => cfg.with_run_cache(
                std::sync::Arc::clone(corpus) as _,
                self.workload_id(app_name),
            ),
            None => cfg,
        }
    }
}

/// One Table 1 row, measured.
#[derive(Debug)]
pub struct Table1Row {
    /// Application name.
    pub name: String,
    /// Suite.
    pub suite: String,
    /// FP operations present?
    pub fp: bool,
    /// Deterministic as is (bit by bit)?
    pub det_as_is: bool,
    /// First run detecting bit-exact nondeterminism.
    pub first_ndet_run: Option<usize>,
    /// "Det → Det" / "NDet → Det" / "NDet → NDet" / "-" for FP rounding.
    pub fp_impact: String,
    /// First nondeterministic run after FP rounding.
    pub first_ndet_after_fp: Option<usize>,
    /// "NDet → Det" when isolating small structures settled it.
    pub isolating: String,
    /// Deterministic dynamic checking points (final configuration).
    pub det_points: usize,
    /// Nondeterministic dynamic checking points.
    pub ndet_points: usize,
    /// Deterministic at the end of the program?
    pub det_at_end: bool,
    /// Final class.
    pub class: String,
    /// Failed runs the campaign's failure policy absorbed.
    pub failed_runs: usize,
    /// L1 demand hit rate in percent (`--cache-model`).
    pub l1_hit_rate: Option<f64>,
    /// MHM old-value read hit rate in percent (`--cache-model`).
    pub mhm_hit_rate: Option<f64>,
}

/// The campaign-wide cache rates of a report, when the cache model ran.
fn cache_rates(report: &instantcheck::CheckReport) -> (Option<f64>, Option<f64>) {
    match &report.cache {
        Some(c) => (Some(c.hit_rate()), Some(c.mhm_hit_rate())),
        None => (None, None),
    }
}

/// Logs a campaign failure and returns `None` so the caller can move on
/// to the next application instead of aborting the whole table.
fn log_and_skip<T>(app: &AppSpec, what: &str, err: &tsim::SimError) -> Option<T> {
    eprintln!(
        "  {}: {what} failed ({}: {err}) — skipping; rerun with --policy \
         skip or retry to salvage the campaign",
        app.name,
        err.kind(),
    );
    None
}

/// Logs any failures a completed campaign absorbed.
fn log_absorbed(app: &AppSpec, report: &instantcheck::CheckReport) {
    for f in &report.failures {
        eprintln!("  {}: absorbed failure: {f}", app.name);
    }
}

/// Runs the Table 1 pipeline for one registered application. Returns
/// `None` (after logging) if the campaign failed beyond what its
/// failure policy absorbs.
pub fn table1_row(app: &AppSpec, opts: &HarnessOpts, reporter: &Reporter) -> Option<Table1Row> {
    let subject = app.subject();
    let sink = opts.trace_sink();
    let mut cfg = opts.with_corpus(opts.template(), app.name);
    if let Some(s) = &sink {
        cfg = cfg.with_sink(std::sync::Arc::clone(s) as _);
    }
    let c: Characterization = match characterize(&subject, &cfg) {
        Ok(c) => c,
        Err(e) => return log_and_skip(app, "characterization", &e),
    };
    if let Some(s) = &sink {
        reporter.trace(app.name, s);
    }
    Some(characterization_to_row(app, &c))
}

fn characterization_to_row(app: &AppSpec, c: &Characterization) -> Table1Row {
    let fp_impact = if c.det_as_is() {
        // Bit-identical runs stay identical after any deterministic
        // rounding, FP app or not.
        "Det→Det".to_owned()
    } else if let Some(r) = &c.fp_rounded {
        if r.is_deterministic() {
            "NDet→Det".to_owned()
        } else {
            "NDet→NDet".to_owned()
        }
    } else {
        "NDet→NDet".to_owned() // non-FP app: rounding changes nothing
    };
    let isolating = match &c.isolated {
        Some(r) if r.is_deterministic() => "NDet→Det".to_owned(),
        Some(_) => "NDet→NDet".to_owned(),
        None => "-".to_owned(),
    };
    let report = c.final_report();
    let (l1_hit_rate, mhm_hit_rate) = cache_rates(report);
    Table1Row {
        name: app.name.to_owned(),
        suite: app.suite.to_owned(),
        fp: app.uses_fp,
        det_as_is: c.det_as_is(),
        first_ndet_run: c.first_ndet_run(),
        fp_impact,
        first_ndet_after_fp: c.first_ndet_run_after_fp(),
        isolating,
        det_points: report.det_points,
        ndet_points: report.ndet_points,
        det_at_end: report.det_at_end,
        class: c.class.to_string(),
        failed_runs: c.failures().len(),
        l1_hit_rate,
        mhm_hit_rate,
    }
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:<9} {:>3} {:>7} {:>6} {:>10} {:>7} {:>10} {:>8} {:>6} {:>4}  Class",
        "Application",
        "Source",
        "FP?",
        "Det as",
        "First",
        "FP round",
        "First",
        "Isolating",
        "#Det",
        "#NDet",
        "End"
    );
    let _ = writeln!(
        s,
        "{:<24} {:<9} {:>3} {:>7} {:>6} {:>10} {:>7} {:>10} {:>8} {:>6} {:>4}",
        "", "", "", "is?", "NDet", "impact", "NDet", "structs", "points", "points", "Det"
    );
    let _ = writeln!(s, "{:-<118}", "");
    for r in rows {
        let star = if r.name == "streamcluster" && r.ndet_points > 0 {
            "*"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "{:<24} {:<9} {:>3} {:>7} {:>6} {:>10} {:>7} {:>10} {:>8} {:>5}{} {:>4}  {}",
            r.name,
            r.suite,
            if r.fp { "Y" } else { "N" },
            if r.det_as_is { "Y" } else { "N" },
            r.first_ndet_run.map_or("-".into(), |v| v.to_string()),
            r.fp_impact,
            r.first_ndet_after_fp.map_or("-".into(), |v| v.to_string()),
            r.isolating,
            r.det_points,
            r.ndet_points,
            star,
            if r.det_at_end { "Y" } else { "N" },
            r.class,
        );
    }
    s
}

/// One Figure 6 bar group.
#[derive(Debug)]
pub struct Fig6Row {
    /// Application.
    pub name: String,
    /// `HW-InstantCheck_Inc` / Native.
    pub hw: f64,
    /// `SW-InstantCheck_Inc-Ideal` / Native.
    pub sw_inc: f64,
    /// `SW-InstantCheck_Tr-Ideal` / Native.
    pub sw_tr: f64,
}

/// Measures Figure 6 for every registered app, plus the GEOM row and the
/// sphinx3 delete-4% special case.
pub fn fig6(opts: &HarnessOpts) -> (Vec<Fig6Row>, Fig6Row, Fig6Row) {
    let mut rows = Vec::new();
    for app in opts.apps() {
        let build = std::sync::Arc::clone(&app.build);
        let report = match measure_overhead(move || build(), opts.seed, None, &IgnoreSpec::new()) {
            Ok(r) => r,
            Err(e) => {
                let skipped: Option<()> = log_and_skip(&app, "overhead run", &e);
                let _ = skipped;
                continue;
            }
        };
        rows.push(Fig6Row {
            name: app.name.to_owned(),
            hw: report.hw_ratio(),
            sw_inc: report.sw_inc_ratio(),
            sw_tr: report.sw_tr_ratio(),
        });
    }
    let geom = Fig6Row {
        name: "GEOM".to_owned(),
        hw: geometric_mean(rows.iter().map(|r| r.hw)),
        sw_inc: geometric_mean(rows.iter().map(|r| r.sw_inc)),
        sw_tr: geometric_mean(rows.iter().map(|r| r.sw_tr)),
    };
    // The sphinx3 "delete 4% of the state at every checkpoint" case.
    let sphinx =
        instantcheck_workloads::by_name("sphinx3", opts.scaled).expect("sphinx3 registered");
    let build = std::sync::Arc::clone(&sphinx.build);
    let del = measure_overhead(
        move || build(),
        opts.seed,
        Some(FpRound::default()),
        &sphinx.ignore,
    )
    .expect("overhead run completes");
    let deletion = Fig6Row {
        name: "sphinx3+delete4%".to_owned(),
        hw: del.hw_ratio(),
        sw_inc: del.sw_inc_ratio(),
        sw_tr: del.sw_tr_ratio(),
    };
    (rows, geom, deletion)
}

/// Renders Figure 6 as a table.
pub fn render_fig6(rows: &[Fig6Row], geom: &Fig6Row, deletion: &Fig6Row) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:>12} {:>16} {:>16}",
        "Application", "HW-Inc", "SW-Inc-Ideal", "SW-Tr-Ideal"
    );
    let _ = writeln!(s, "{}", "-".repeat(72));
    for r in rows.iter().chain([geom, deletion]) {
        let _ = writeln!(
            s,
            "{:<24} {:>11.3}x {:>15.2}x {:>15.2}x",
            r.name, r.hw, r.sw_inc, r.sw_tr
        );
    }
    s
}

/// One Table 2 row (seeded-bug detection).
#[derive(Debug)]
pub struct Table2Row {
    /// Application + bug type.
    pub name: String,
    /// Deterministic dynamic checking points.
    pub det_points: usize,
    /// Nondeterministic dynamic checking points.
    pub ndet_points: usize,
    /// First run detecting the bug's nondeterminism.
    pub first_ndet_run: Option<usize>,
    /// The nondeterminism distributions (Figure 8), rendered.
    pub distributions: Vec<String>,
    /// Failed runs the campaign's failure policy absorbed.
    pub failed_runs: usize,
    /// L1 demand hit rate in percent (`--cache-model`).
    pub l1_hit_rate: Option<f64>,
    /// MHM old-value read hit rate in percent (`--cache-model`).
    pub mhm_hit_rate: Option<f64>,
}

/// Runs the Table 2 campaign for one seeded-bug variant. The seeded
/// water bugs are checked with FP rounding enabled (the unseeded apps
/// are deterministic under that configuration, so any nondeterminism is
/// the bug's). Returns `None` (after logging) if the campaign failed
/// beyond what its failure policy absorbs.
pub fn table2_row(app: &AppSpec, opts: &HarnessOpts, reporter: &Reporter) -> Option<Table2Row> {
    let build = std::sync::Arc::clone(&app.build);
    let sink = opts.trace_sink();
    let mut cfg = opts.with_corpus(opts.template(), app.name);
    if app.uses_fp {
        cfg = cfg.with_rounding(FpRound::default());
    }
    if let Some(s) = &sink {
        cfg = cfg.with_sink(std::sync::Arc::clone(s) as _);
    }
    let report = match instantcheck::Checker::new(cfg)
        .expect("valid config")
        .check(move || build())
    {
        Ok(r) => r,
        Err(e) => return log_and_skip(app, "campaign", &e),
    };
    if let Some(s) = &sink {
        reporter.trace(app.name, s);
    }
    log_absorbed(app, &report);
    let (l1_hit_rate, mhm_hit_rate) = cache_rates(&report);
    Some(Table2Row {
        name: app.name.to_owned(),
        det_points: report.det_points,
        ndet_points: report.ndet_points,
        first_ndet_run: report.first_ndet_run,
        distributions: report
            .ndet_distributions()
            .into_iter()
            .map(|(d, count)| format!("{count} points: {d}"))
            .collect(),
        failed_runs: report.failures.len(),
        l1_hit_rate,
        mhm_hit_rate,
    })
}

/// Renders Table 2.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:>10} {:>11} {:>10}",
        "Application+bug", "#Det", "#NDet", "First NDet"
    );
    let _ = writeln!(s, "{}", "-".repeat(60));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<24} {:>10} {:>11} {:>10}",
            r.name,
            r.det_points,
            r.ndet_points,
            r.first_ndet_run.map_or("-".into(), |v| v.to_string()),
        );
    }
    s
}

/// Distribution report for Figures 5/8: for each named app, the grouped
/// per-checkpoint distributions.
#[derive(Debug)]
pub struct DistributionReport {
    /// Application name.
    pub name: String,
    /// `(distribution, number of checkpoints behaving that way)`,
    /// deterministic groups included.
    pub groups: Vec<(String, usize)>,
    /// Failed runs the campaign's failure policy absorbed.
    pub failed_runs: usize,
    /// L1 demand hit rate in percent (`--cache-model`).
    pub l1_hit_rate: Option<f64>,
    /// MHM old-value read hit rate in percent (`--cache-model`).
    pub mhm_hit_rate: Option<f64>,
}

/// Measures the nondeterminism distributions of one app under the given
/// config (Figure 5 uses bit-exact configs for FP-noise apps and default
/// configs for others; Figure 8 uses the seeded bugs with rounding).
/// Returns `None` (after logging) if the campaign failed beyond what
/// its failure policy absorbs.
pub fn distributions(
    app: &AppSpec,
    opts: &HarnessOpts,
    rounding: Option<FpRound>,
    reporter: &Reporter,
) -> Option<DistributionReport> {
    let build = std::sync::Arc::clone(&app.build);
    let sink = opts.trace_sink();
    let mut cfg = opts.with_corpus(opts.template(), app.name);
    if let Some(r) = rounding {
        cfg = cfg.with_rounding(r);
    }
    if let Some(s) = &sink {
        cfg = cfg.with_sink(std::sync::Arc::clone(s) as _);
    }
    let report = match instantcheck::Checker::new(cfg)
        .expect("valid config")
        .check(move || build())
    {
        Ok(r) => r,
        Err(e) => return log_and_skip(app, "campaign", &e),
    };
    if let Some(s) = &sink {
        reporter.trace(app.name, s);
    }
    log_absorbed(app, &report);
    let (l1_hit_rate, mhm_hit_rate) = cache_rates(&report);
    Some(DistributionReport {
        name: app.name.to_owned(),
        groups: report
            .grouped_distributions()
            .into_iter()
            .map(|(d, count)| (d.to_string(), count))
            .collect(),
        failed_runs: report.failures.len(),
        l1_hit_rate,
        mhm_hit_rate,
    })
}

/// Renders a distribution report.
pub fn render_distributions(reports: &[DistributionReport]) -> String {
    let mut s = String::new();
    for r in reports {
        let _ = writeln!(s, "{}:", r.name);
        for (dist, count) in &r.groups {
            let label = if dist.contains('-') { "NDet" } else { "Det " };
            let _ = writeln!(s, "  [{label}] {count:>6} checking points behave {dist}");
        }
    }
    s
}

/// One wall-clock measurement of a full checking campaign at a fixed
/// worker count — a row of `results/BENCH_campaign.json`.
#[derive(Debug)]
pub struct CampaignBenchRow {
    /// Application name.
    pub name: String,
    /// Campaign length (runs compared).
    pub runs: usize,
    /// Worker threads (`--jobs`).
    pub jobs: usize,
    /// Repetitions measured.
    pub reps: usize,
    /// Mean campaign wall time in milliseconds.
    pub mean_ms: f64,
    /// Standard deviation across the repetitions, in milliseconds.
    pub stddev_ms: f64,
    /// Mean serial (jobs=1) wall time divided by this row's mean.
    pub speedup: f64,
}

/// Times full checking campaigns for one app across worker counts and
/// returns one row per `jobs` value, with speedups relative to the
/// serial (jobs=1) row — or the first row when the axis omits 1.
/// Returns `None` (after logging) if the campaign fails outright.
///
/// The checker's deterministic reduction makes the report identical at
/// every worker count, so only the wall clock varies; each row's last
/// repetition is still compared against the serial report as a cheap
/// end-to-end cross-check. The `--corpus` store is deliberately *not*
/// attached here: a timing sweep satisfied from cache would measure
/// file reads, not the campaign executor.
pub fn campaign_bench(
    app: &AppSpec,
    opts: &HarnessOpts,
    jobs_axis: &[usize],
    reps: usize,
    reporter: &Reporter,
) -> Option<Vec<CampaignBenchRow>> {
    // One untimed serial campaign validates the workload (a campaign
    // that aborts is not worth timing) and pins the reference report.
    let build = std::sync::Arc::clone(&app.build);
    let reference = match instantcheck::Checker::new(opts.template().with_jobs(1))
        .expect("valid config")
        .check(move || build())
    {
        Ok(r) => r,
        Err(e) => return log_and_skip(app, "campaign", &e),
    };
    let mut measured = Vec::new();
    for &jobs in jobs_axis {
        reporter.progress(&format!(
            "  timing {} ({} runs, jobs={jobs}, {reps} reps)…",
            app.name, opts.runs
        ));
        let cfg = opts.template().with_jobs(jobs);
        let build = std::sync::Arc::clone(&app.build);
        let mut last = None;
        let samples = timing::time_reps(reps, || {
            last = Some(
                instantcheck::Checker::new(cfg.clone())
                    .expect("valid config")
                    .check(|| build())
                    .expect("campaign validated above"),
            );
        });
        assert_eq!(
            last.as_ref(),
            Some(&reference),
            "{}: worker count changed the report (jobs={jobs})",
            app.name
        );
        let (mean_ms, stddev_ms) = timing::mean_stddev(&samples);
        measured.push((jobs, mean_ms, stddev_ms));
    }
    let serial_mean = measured
        .iter()
        .find(|(jobs, ..)| *jobs == 1)
        .or_else(|| measured.first())
        .map(|(_, mean, _)| *mean)?;
    Some(
        measured
            .into_iter()
            .map(|(jobs, mean_ms, stddev_ms)| CampaignBenchRow {
                name: app.name.to_owned(),
                runs: opts.runs,
                jobs,
                reps,
                mean_ms,
                stddev_ms,
                speedup: serial_mean / mean_ms.max(f64::MIN_POSITIVE),
            })
            .collect(),
    )
}

/// Renders campaign-bench rows as an aligned table.
pub fn render_campaign_bench(rows: &[CampaignBenchRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<16} {:>5} {:>5} {:>12} {:>11} {:>8}",
        "app", "runs", "jobs", "mean", "stddev", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>5} {:>5} {:>9.2} ms {:>8.2} ms {:>7.2}x",
            r.name, r.runs, r.jobs, r.mean_ms, r.stddev_ms, r.speedup
        );
    }
    s
}

impl ToJson for Table1Row {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "name", &self.name);
        write_field(out, &mut first, "suite", &self.suite);
        write_field(out, &mut first, "fp", &self.fp);
        write_field(out, &mut first, "det_as_is", &self.det_as_is);
        write_field(out, &mut first, "first_ndet_run", &self.first_ndet_run);
        write_field(out, &mut first, "fp_impact", &self.fp_impact);
        write_field(
            out,
            &mut first,
            "first_ndet_after_fp",
            &self.first_ndet_after_fp,
        );
        write_field(out, &mut first, "isolating", &self.isolating);
        write_field(out, &mut first, "det_points", &self.det_points);
        write_field(out, &mut first, "ndet_points", &self.ndet_points);
        write_field(out, &mut first, "det_at_end", &self.det_at_end);
        write_field(out, &mut first, "class", &self.class);
        write_field(out, &mut first, "failed_runs", &self.failed_runs);
        write_field(out, &mut first, "l1_hit_rate", &self.l1_hit_rate);
        write_field(out, &mut first, "mhm_hit_rate", &self.mhm_hit_rate);
        out.push('}');
    }
}

impl ToJson for Fig6Row {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "name", &self.name);
        write_field(out, &mut first, "hw", &self.hw);
        write_field(out, &mut first, "sw_inc", &self.sw_inc);
        write_field(out, &mut first, "sw_tr", &self.sw_tr);
        out.push('}');
    }
}

impl ToJson for Table2Row {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "name", &self.name);
        write_field(out, &mut first, "det_points", &self.det_points);
        write_field(out, &mut first, "ndet_points", &self.ndet_points);
        write_field(out, &mut first, "first_ndet_run", &self.first_ndet_run);
        write_field(out, &mut first, "distributions", &self.distributions);
        write_field(out, &mut first, "failed_runs", &self.failed_runs);
        write_field(out, &mut first, "l1_hit_rate", &self.l1_hit_rate);
        write_field(out, &mut first, "mhm_hit_rate", &self.mhm_hit_rate);
        out.push('}');
    }
}

impl ToJson for CampaignBenchRow {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "name", &self.name);
        write_field(out, &mut first, "runs", &self.runs);
        write_field(out, &mut first, "jobs", &self.jobs);
        write_field(out, &mut first, "reps", &self.reps);
        write_field(out, &mut first, "mean_ms", &self.mean_ms);
        write_field(out, &mut first, "stddev_ms", &self.stddev_ms);
        write_field(out, &mut first, "speedup", &self.speedup);
        out.push('}');
    }
}

impl ToJson for DistributionReport {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        let mut first = true;
        write_field(out, &mut first, "name", &self.name);
        write_field(out, &mut first, "groups", &self.groups);
        write_field(out, &mut first, "failed_runs", &self.failed_runs);
        write_field(out, &mut first, "l1_hit_rate", &self.l1_hit_rate);
        write_field(out, &mut first, "mhm_hit_rate", &self.mhm_hit_rate);
        out.push('}');
    }
}

/// Writes a JSON artifact under `results/`.
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, value.to_json()) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Writes a campaign event trace under `results/`, next to the JSON
/// artifacts, as deterministic JSONL that `icprof` consumes.
pub fn write_trace(name: &str, events: &[obs::Event]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.trace.jsonl"));
        if let Err(e) = std::fs::write(&path, obs::events_to_jsonl(events)) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Uniform output channel for the harness binaries: progress notes on
/// stderr, result rows/tables on stdout, JSON and trace artifacts under
/// `results/` — so every binary reports the same way.
#[derive(Debug)]
pub struct Reporter {
    tool: String,
}

impl Reporter {
    /// Creates the reporter for one harness binary; `tool` names the
    /// JSON artifact (`results/{tool}.json`).
    pub fn new(tool: &str) -> Self {
        Reporter {
            tool: tool.to_owned(),
        }
    }

    /// A progress note (stderr, so tables stay pipeable).
    pub fn progress(&self, msg: &str) {
        eprintln!("{msg}");
    }

    /// One result line (stdout).
    pub fn line(&self, line: impl AsRef<str>) {
        println!("{}", line.as_ref());
    }

    /// A pre-rendered multi-line table (stdout).
    pub fn table(&self, text: &str) {
        println!("{text}");
    }

    /// Writes the binary's JSON artifact (`results/{tool}.json`).
    pub fn artifact<T: ToJson + ?Sized>(&self, value: &T) {
        write_json(&self.tool, value);
    }

    /// Writes a recorded campaign trace
    /// (`results/{tool}-{label}.trace.jsonl`).
    pub fn trace(&self, label: &str, sink: &obs::MemorySink) {
        write_trace(&format!("{}-{label}", self.tool), &sink.events());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> HarnessOpts {
        HarnessOpts {
            scaled: true,
            runs: 5,
            ..HarnessOpts::default()
        }
    }

    #[test]
    fn table1_row_for_a_bit_exact_app() {
        let app = instantcheck_workloads::by_name("fft", true).unwrap();
        let row =
            table1_row(&app, &quick_opts(), &Reporter::new("test")).expect("campaign completes");
        assert!(row.det_as_is);
        assert_eq!(row.fp_impact, "Det→Det");
        assert_eq!(row.ndet_points, 0);
        assert!(row.det_at_end);
        assert_eq!(row.class, "bit-by-bit");
        assert_eq!(row.failed_runs, 0);
    }

    #[test]
    fn table2_row_for_a_seeded_bug() {
        let app = instantcheck_workloads::seeded_bugs_scaled()
            .into_iter()
            .find(|a| a.name.contains("atomicity"))
            .unwrap();
        let opts = HarnessOpts {
            scaled: true,
            runs: 10,
            ..HarnessOpts::default()
        };
        let row = table2_row(&app, &opts, &Reporter::new("test")).expect("campaign completes");
        assert!(row.ndet_points > 0);
        assert!(row.det_points > 0);
        assert!(row.first_ndet_run.is_some());
        assert!(row.l1_hit_rate.is_none(), "cache model was off");
    }

    #[test]
    fn cache_model_rates_reach_the_row_json() {
        let app = instantcheck_workloads::by_name("fft", true).unwrap();
        let opts = HarnessOpts {
            cache_model: true,
            ..quick_opts()
        };
        let row = table2_row(&app, &opts, &Reporter::new("test")).expect("campaign completes");
        let mhm = row.mhm_hit_rate.expect("cache model was on");
        assert!((mhm - 100.0).abs() < 1e-9, "§3.1: old-value reads all hit");
        assert!(row.l1_hit_rate.is_some());
        let json = row.to_json();
        assert!(json.contains("\"l1_hit_rate\": "));
        assert!(json.contains("\"mhm_hit_rate\": 100.0"));
    }

    #[test]
    fn render_functions_produce_tables() {
        let rows = vec![Table1Row {
            name: "x".into(),
            suite: "s".into(),
            fp: true,
            det_as_is: true,
            first_ndet_run: None,
            fp_impact: "Det→Det".into(),
            first_ndet_after_fp: None,
            isolating: "-".into(),
            det_points: 5,
            ndet_points: 0,
            det_at_end: true,
            class: "bit-by-bit".into(),
            failed_runs: 0,
            l1_hit_rate: None,
            mhm_hit_rate: None,
        }];
        let t = render_table1(&rows);
        assert!(t.contains("Application"));
        assert!(t.contains('x'));

        let f = Fig6Row {
            name: "x".into(),
            hw: 1.0,
            sw_inc: 3.0,
            sw_tr: 5.0,
        };
        let g = Fig6Row {
            name: "GEOM".into(),
            hw: 1.0,
            sw_inc: 3.0,
            sw_tr: 5.0,
        };
        let d = Fig6Row {
            name: "del".into(),
            hw: 4.5,
            sw_inc: 55.0,
            sw_tr: 438.0,
        };
        let s = render_fig6(&[f], &g, &d);
        assert!(s.contains("GEOM"));
        assert!(s.contains("438.00x"));
    }

    #[test]
    fn opts_defaults() {
        let o = HarnessOpts::default();
        assert_eq!(o.runs, 30);
        assert!(!o.scaled);
        assert_eq!(o.apps().len(), 17);
    }
}
