//! Spec-driven command-line parsing shared by the harness binaries.
//!
//! Every campaign binary used to plumb its own scheme/seed/policy flags
//! into a [`CheckerConfig`](instantcheck::CheckerConfig); now they all
//! parse into one
//! [`CampaignSpec`] via [`parse_spec`] and build configs with
//! `CheckerConfig::from_spec`. The historical flags (`--runs`,
//! `--seed`, `--policy`, …) remain as aliases for the corresponding
//! spec fields, and `--spec FILE` loads a full serialized spec — the
//! same JSON the `icd` orchestrator accepts — which individual flags
//! may then override.

use std::sync::Arc;

use corpus::{Corpus, CorpusOptions};
use instantcheck::{parse_rounding, parse_switch, CampaignSpec, FailurePolicy, Scheme};

/// The parsed spec-level command line of a harness binary.
#[derive(Debug, Clone)]
pub struct SpecArgs {
    /// The campaign template. Its `workload` is empty unless `--spec`
    /// supplied one — the table/figure binaries stamp the per-app
    /// workload id themselves. Corpus placement flags are echoed into
    /// the spec's shape-only `corpus_*` fields, so a recorded spec
    /// documents the storage it ran against without moving any run key.
    pub spec: CampaignSpec,
    /// `--scaled`: use miniature workloads.
    pub scaled: bool,
    /// `--trace`: record per-campaign event traces.
    pub trace: bool,
    /// The corpus named by `--corpus-dir` (or the historic `--corpus`
    /// alias), already opened through [`Corpus::open`] with the sizing
    /// flags applied.
    pub corpus: Option<Arc<Corpus>>,
    /// Arguments this parser did not recognize, in order — binaries
    /// with extra flags (subcommands, `--dir`, …) consume these.
    pub rest: Vec<String>,
}

/// Parses the shared spec flags out of `args` (exclusive of `argv[0]`).
///
/// Recognized: `--spec FILE`, `--workload ID`, `--scheme S` (lenient:
/// `hw-inc`, `SwTr`, …), `--scaled`, `--runs N`, `--seed N`,
/// `--lib-seed N`, `--switch TOKEN`, `--rounding TOKEN`, `--policy P`
/// (`abort`/`skip`/`retry`/`retry-same`), `--deadline-ms N`,
/// `--max-steps N`, `--jobs N`, `--cache-model`, `--trace`,
/// `--corpus-dir DIR`, `--corpus-segment-bytes N`,
/// `--corpus-max-bytes N`, `--corpus-cache-slots N` (and the historic
/// `--corpus DIR` alias). Anything else lands in [`SpecArgs::rest`].
/// (`--workload` matters for spec authoring; the table/figure binaries
/// overwrite it per app.)
///
/// Flag order is immaterial: the skip policy's failure budget is
/// resolved against the *final* run count, so `--policy skip --runs 8`
/// and `--runs 8 --policy skip` agree.
///
/// # Errors
///
/// A usage message naming the offending flag (missing value, malformed
/// number, unknown token, unreadable spec file or corpus directory).
pub fn parse_spec(args: &[String]) -> Result<SpecArgs, String> {
    let mut spec_file: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut scheme: Option<Scheme> = None;
    let mut runs: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut lib_seed: Option<u64> = None;
    let mut switch: Option<String> = None;
    let mut rounding: Option<String> = None;
    let mut policy: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_steps: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut cache_model = false;
    let mut scaled = false;
    let mut trace = false;
    let mut corpus_dir: Option<String> = None;
    let mut corpus_segment_bytes: Option<u64> = None;
    let mut corpus_max_bytes: Option<u64> = None;
    let mut corpus_cache_slots: Option<u64> = None;
    let mut rest = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--spec" => spec_file = Some(value()?),
            "--workload" => workload = Some(value()?),
            "--scheme" => {
                let v = value()?;
                scheme = Some(Scheme::parse(&v).ok_or_else(|| format!("unknown scheme {v:?}"))?);
            }
            "--scaled" => scaled = true,
            "--trace" => trace = true,
            "--cache-model" => cache_model = true,
            "--runs" => runs = Some(parse_num(flag, &value()?)?),
            "--seed" => seed = Some(parse_num(flag, &value()?)?),
            "--lib-seed" => lib_seed = Some(parse_num(flag, &value()?)?),
            "--switch" => switch = Some(value()?),
            "--rounding" => rounding = Some(value()?),
            "--policy" => policy = Some(value()?),
            "--deadline-ms" => deadline_ms = Some(parse_num(flag, &value()?)?),
            "--max-steps" => max_steps = Some(parse_num(flag, &value()?)?),
            "--jobs" => jobs = Some(parse_num(flag, &value()?)?),
            // `--corpus` predates the namespaced storage flags; both
            // spellings feed the same `CorpusOptions`.
            "--corpus-dir" | "--corpus" => corpus_dir = Some(value()?),
            "--corpus-segment-bytes" => corpus_segment_bytes = Some(parse_num(flag, &value()?)?),
            "--corpus-max-bytes" => corpus_max_bytes = Some(parse_num(flag, &value()?)?),
            "--corpus-cache-slots" => corpus_cache_slots = Some(parse_num(flag, &value()?)?),
            other => rest.push(other.to_owned()),
        }
        i += 1;
    }

    let mut spec = match &spec_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec file {path}: {e}"))?;
            CampaignSpec::from_json(text.trim())
                .map_err(|e| format!("invalid spec file {path}: {e}"))?
        }
        None => CampaignSpec::new("", scheme.unwrap_or(Scheme::HwInc)),
    };
    if spec_file.is_some() {
        if let Some(s) = scheme {
            spec.scheme = s;
        }
    }
    if let Some(w) = workload {
        spec.workload = w;
    }
    if let Some(n) = runs {
        spec.runs = n;
    }
    if let Some(s) = seed {
        spec.base_seed = s;
    }
    if let Some(s) = lib_seed {
        spec.lib_seed = s;
    }
    if let Some(tok) = &switch {
        spec.switch = parse_switch(tok).map_err(|e| format!("--switch: {e}"))?;
    }
    if let Some(tok) = &rounding {
        spec.rounding = parse_rounding(tok).map_err(|e| format!("--rounding: {e}"))?;
    }
    if let Some(ms) = deadline_ms {
        spec.deadline_ms = Some(ms);
    }
    if let Some(n) = max_steps {
        spec.max_steps = n;
    }
    if let Some(n) = jobs {
        spec.jobs = Some(n);
    }
    if cache_model {
        spec.cache_model = true;
    }
    if let Some(name) = &policy {
        spec.policy = resolve_policy(name, spec.runs)?;
    }

    // Storage placement: flags override what the spec file carried,
    // and whatever wins is echoed back into the spec's shape-only
    // fields (never the run key).
    if let Some(dir) = corpus_dir {
        spec.corpus_dir = Some(dir);
    }
    if let Some(n) = corpus_segment_bytes {
        spec.corpus_segment_bytes = Some(n);
    }
    if let Some(n) = corpus_max_bytes {
        spec.corpus_max_bytes = Some(n);
    }
    if let Some(n) = corpus_cache_slots {
        spec.corpus_cache_slots = Some(n);
    }
    let corpus = match &spec.corpus_dir {
        Some(dir) => {
            let mut options = CorpusOptions::at(dir);
            if let Some(n) = spec.corpus_segment_bytes {
                options = options.segment_bytes(n);
            }
            if let Some(n) = spec.corpus_max_bytes {
                options = options.max_bytes(n);
            }
            if let Some(n) = spec.corpus_cache_slots {
                options = options.cache_slots(n as usize);
            }
            Some(Arc::new(options.open().map_err(|e| e.to_string())?))
        }
        None => None,
    };

    Ok(SpecArgs {
        spec,
        scaled,
        trace,
        corpus,
        rest,
    })
}

/// Resolves a `--policy` name against the campaign's final run count
/// (the skip budget is half the campaign, as the harness has always
/// done).
///
/// # Errors
///
/// Unknown policy names.
pub fn resolve_policy(name: &str, runs: usize) -> Result<FailurePolicy, String> {
    match name {
        "abort" => Ok(FailurePolicy::Abort),
        "skip" => Ok(FailurePolicy::Skip {
            max_failures: runs.div_ceil(2),
        }),
        "retry" => Ok(FailurePolicy::Retry {
            max_retries: 2,
            reseed: true,
        }),
        "retry-same" => Ok(FailurePolicy::Retry {
            max_retries: 2,
            reseed: false,
        }),
        other => Err(format!(
            "unknown policy {other:?} (expected abort, skip, retry, or retry-same)"
        )),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: not a number: {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsim::SwitchPolicy;

    fn parse(args: &[&str]) -> SpecArgs {
        parse_spec(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn defaults_and_aliases_agree_with_the_old_flags() {
        let sa = parse(&[]);
        assert_eq!(sa.spec, CampaignSpec::new("", Scheme::HwInc));
        assert!(!sa.scaled && !sa.trace && sa.corpus.is_none() && sa.rest.is_empty());

        let sa = parse(&[
            "--scaled",
            "--runs",
            "8",
            "--seed",
            "7",
            "--jobs",
            "3",
            "--trace",
            "--cache-model",
        ]);
        assert!(sa.scaled && sa.trace);
        assert_eq!(sa.spec.runs, 8);
        assert_eq!(sa.spec.base_seed, 7);
        assert_eq!(sa.spec.jobs, Some(3));
        assert!(sa.spec.cache_model);
    }

    #[test]
    fn policy_budget_uses_the_final_run_count_either_order() {
        let a = parse(&["--policy", "skip", "--runs", "9"]);
        let b = parse(&["--runs", "9", "--policy", "skip"]);
        assert_eq!(a.spec.policy, FailurePolicy::Skip { max_failures: 5 });
        assert_eq!(a.spec.policy, b.spec.policy);
    }

    #[test]
    fn scheme_switch_and_rounding_tokens_parse() {
        let sa = parse(&[
            "--scheme",
            "sw-tr",
            "--switch",
            "every-nth:4",
            "--rounding",
            "mask-mantissa:12",
        ]);
        assert_eq!(sa.spec.scheme, Scheme::SwTr);
        assert_eq!(sa.spec.switch, SwitchPolicy::EveryNth(4));
        assert!(sa.spec.rounding.is_some());
    }

    #[test]
    fn unknown_arguments_pass_through_in_order() {
        let sa = parse(&[
            "record",
            "--app",
            "canneal",
            "--runs",
            "4",
            "--require-hits",
        ]);
        assert_eq!(sa.rest, ["record", "--app", "canneal", "--require-hits"]);
        assert_eq!(sa.spec.runs, 4);
    }

    #[test]
    fn spec_file_round_trips_and_flags_override_it() {
        let dir = std::env::temp_dir().join(format!("icd-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.spec.json");
        let spec = CampaignSpec::new("canneal:scaled", Scheme::HwInc).with_runs(8);
        std::fs::write(&path, spec.to_json()).unwrap();

        let path_s = path.to_string_lossy().into_owned();
        let sa = parse(&["--spec", &path_s]);
        assert_eq!(sa.spec, spec);

        let sa = parse(&["--spec", &path_s, "--runs", "2"]);
        assert_eq!(sa.spec.workload, "canneal:scaled");
        assert_eq!(sa.spec.runs, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_flags_open_the_store_and_land_in_the_spec_shape() {
        let dir = std::env::temp_dir().join(format!("icd-cli-corpus-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let dir_s = dir.to_string_lossy().into_owned();

        let sa = parse(&[
            "--corpus-dir",
            &dir_s,
            "--corpus-segment-bytes",
            "65536",
            "--corpus-max-bytes",
            "1048576",
            "--corpus-cache-slots",
            "128",
        ]);
        assert_eq!(sa.spec.corpus_dir.as_deref(), Some(dir_s.as_str()));
        assert_eq!(sa.spec.corpus_segment_bytes, Some(65536));
        assert_eq!(sa.spec.corpus_max_bytes, Some(1048576));
        assert_eq!(sa.spec.corpus_cache_slots, Some(128));
        let corpus = sa.corpus.expect("corpus opened");
        assert_eq!(corpus.dir(), Some(dir.as_path()));
        assert_eq!(corpus.cache_capacity(), 128);

        // The pre-namespacing spelling keeps working, via the same path.
        let sa = parse(&["--corpus", &dir_s]);
        assert_eq!(sa.spec.corpus_dir.as_deref(), Some(dir_s.as_str()));
        assert!(sa.corpus.is_some());

        // The run key ignores storage placement entirely.
        let keyed = parse(&["--corpus", &dir_s]).spec.run_key(0, 1, None);
        let bare = parse(&[]).spec.run_key(0, 1, None);
        assert_eq!(keyed.canonical(), bare.canonical());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_input_names_the_flag() {
        let err = |args: &[&str]| {
            parse_spec(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap_err()
        };
        assert!(err(&["--runs", "many"]).contains("--runs"));
        assert!(err(&["--runs"]).contains("needs a value"));
        assert!(err(&["--scheme", "quantum"]).contains("unknown scheme"));
        assert!(err(&["--policy", "hope"]).contains("unknown policy"));
        assert!(err(&["--spec", "/no/such/file.json"]).contains("cannot read"));
    }
}
