//! A minimal wall-clock micro-benchmark runner for the `benches/`
//! harnesses (`harness = false`).
//!
//! Each measurement runs a short calibration pass to pick an iteration
//! count targeting ~100ms, then reports the best of several batches
//! (the usual defense against scheduling noise). This is intentionally
//! simple: the benches exist to spot order-of-magnitude regressions in
//! the hashing substrate and the simulator, not to resolve 1% deltas.

use std::hint::black_box;
use std::time::{Duration, Instant};

const TARGET: Duration = Duration::from_millis(100);
const BATCHES: usize = 5;

/// Times `f` and prints one result row. The closure's return value is
/// black-boxed so the work cannot be optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: grow the iteration count until one batch is long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET / 4 || iters >= 1 << 30 {
            // Scale to the target, then take the best of BATCHES.
            if elapsed < TARGET {
                let factor = TARGET.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
                iters = ((iters as f64 * factor) as u64).max(1);
            }
            break;
        }
        iters *= 8;
    }
    let mut best = Duration::MAX;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed());
    }
    let per_iter = best.as_nanos() as f64 / iters as f64;
    println!(
        "{name:<44} {:>14} /iter  ({iters} iters/batch)",
        format_ns(per_iter)
    );
}

/// Formats a nanosecond quantity with a readable unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
