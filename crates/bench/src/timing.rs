//! A minimal wall-clock micro-benchmark runner for the `benches/`
//! harnesses (`harness = false`).
//!
//! Each measurement runs a short calibration pass to pick an iteration
//! count targeting ~100ms, then reports the best of several batches
//! (the usual defense against scheduling noise) along with the batch
//! mean ± standard deviation, so noisy environments are visible in the
//! output. Setting the `BENCH_JSON` environment variable additionally
//! emits one machine-readable JSON line per measurement. This is
//! intentionally simple: the benches exist to spot order-of-magnitude
//! regressions in the hashing substrate and the simulator, not to
//! resolve 1% deltas.

use std::hint::black_box;
use std::time::{Duration, Instant};

const TARGET: Duration = Duration::from_millis(100);
const BATCHES: usize = 5;

/// Times `f` and prints one result row. The closure's return value is
/// black-boxed so the work cannot be optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: grow the iteration count until one batch is long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET / 4 || iters >= 1 << 30 {
            // Scale to the target, then take the best of BATCHES.
            if elapsed < TARGET {
                let factor = TARGET.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64;
                iters = ((iters as f64 * factor) as u64).max(1);
            }
            break;
        }
        iters *= 8;
    }
    let mut per_iter_ns = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    let best = per_iter_ns.iter().copied().fold(f64::MAX, f64::min);
    let (mean, stddev) = mean_stddev(&per_iter_ns);
    println!(
        "{name:<44} {:>12} /iter  (mean {} ± {}, {iters} iters/batch)",
        format_ns(best),
        format_ns(mean),
        format_ns(stddev),
    );
    if std::env::var_os("BENCH_JSON").is_some() {
        let mut line = String::from("{\"name\": ");
        crate::json::write_str(&mut line, name);
        line.push_str(&format!(
            ", \"best_ns\": {best:?}, \"mean_ns\": {mean:?}, \"stddev_ns\": {stddev:?}, \
             \"iters\": {iters}}}"
        ));
        println!("{line}");
    }
}

/// Times `reps` executions of `f` and returns each repetition's wall
/// time in milliseconds — for macro measurements (whole checking
/// campaigns) where [`bench()`]'s calibrated nanosecond loop would be
/// overkill.
pub fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> Vec<f64> {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_stddev(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Formats a nanosecond quantity with a readable unit.
fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn mean_and_stddev() {
        let (m, s) = mean_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
        let (m1, s1) = mean_stddev(&[3.5]);
        assert!((m1 - 3.5).abs() < 1e-12);
        assert_eq!(s1, 0.0);
    }
}
