//! Prints the canonical single-line JSON for a campaign spec assembled
//! from the shared harness flags — the format `--spec FILE` and the
//! `icd` orchestrator's batch lines consume.
//!
//! ```text
//! cargo run -p instantcheck-bench --example make_spec -- \
//!     --workload canneal:scaled --runs 8 --seed 1 > canneal.spec.json
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sa = instantcheck_bench::cli::parse_spec(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if sa.spec.workload.is_empty() {
        eprintln!("note: no --workload set; the spec is a template");
    }
    println!("{}", sa.spec.to_json());
}
