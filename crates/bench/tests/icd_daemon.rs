//! Daemon-mode end-to-end suite: drives the real `icd` binary over a
//! unix socket with concurrent (and hostile) clients and proves the
//! two hardening contracts:
//!
//! * **Fault isolation** — a mid-line disconnect, a malformed-line
//!   flood, an idle stall, and quota exhaustion each drop *that*
//!   client with an explicit outcome, while every other client's
//!   report/trace artifacts stay byte-identical to solo checker runs.
//! * **Graceful shutdown** — SIGTERM (and the socket `drain` command)
//!   stops intake, answers `{"draining":true}`, finishes every
//!   accepted campaign, and removes the socket file on every exit
//!   path; binding refuses to clobber a *live* daemon's socket but
//!   reclaims a stale one.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use instantcheck::{CampaignSpec, CheckReport, Checker, CheckerConfig, Scheme};
use obs::json::Value;
use obs::MemorySink;
use sched::{ProgramSource, Resolver};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icd-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same workload-id resolver the `icd` binary uses.
fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        instantcheck_workloads::by_name(app, scaled).map(|a| a.build)
    })
}

fn spec(app: &str, seed: u64) -> CampaignSpec {
    CampaignSpec::new(format!("{app}:scaled"), Scheme::HwInc)
        .with_runs(2)
        .with_base_seed(seed)
}

/// A submission line in the daemon's wrapper format.
fn submission_line(id: &str, tenant: &str, spec: &CampaignSpec) -> String {
    format!(
        "{{\"id\":\"{id}\",\"tenant\":\"{tenant}\",\"spec\":{}}}",
        spec.to_json()
    )
}

/// The solo reference artifacts for one campaign id + spec:
/// `(report_json, trace_jsonl)` — exactly what the daemon must write.
fn solo_artifacts(id: &str, spec: &CampaignSpec) -> (String, String) {
    let sink = Arc::new(MemorySink::new());
    let cfg = CheckerConfig::from_spec(spec).with_sink(Arc::clone(&sink) as _);
    let source = resolver()(&spec.workload).expect("registered workload");
    let runs = Checker::new(cfg)
        .expect("valid spec")
        .collect_runs(&move || source())
        .expect("campaign completes");
    let report = CheckReport::from_runs(&runs);
    let baseline = corpus::CampaignBaseline::capture(
        id,
        &spec.workload,
        spec.scheme,
        spec.base_seed,
        &runs[0],
        &report,
    );
    (baseline.to_json(), sink.to_jsonl())
}

fn spawn_daemon(sock: &Path, out: &Path, extra: &[&str]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_icd"));
    cmd.arg("--socket")
        .arg(sock)
        .arg("--out")
        .arg(out)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd.spawn().expect("daemon spawns")
}

fn wait_for_socket(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if UnixStream::connect(path).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon never started listening on {}", path.display());
}

fn wait_for_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = child.kill();
    panic!("daemon did not exit within the watchdog window");
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
}

/// One protocol client: line out, reply line in.
struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(path: &Path) -> Client {
        let stream = UnixStream::connect(path).expect("client connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn request(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("request writes");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply arrives");
        reply.trim_end().to_owned()
    }
}

fn status(sock: &Path) -> Value {
    let reply = Client::connect(sock).request("status");
    obs::json::parse(&reply).expect("status parses")
}

fn counter(status: &Value, name: &str) -> u64 {
    status
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// The headline acceptance scenario, in one daemon lifetime: three
/// concurrent well-behaved clients, one mid-line disconnect, one
/// malformed flood, and quota exhaustion — then SIGTERM. The daemon
/// survives everything, the good artifacts are byte-identical to solo
/// runs, the drain is complete, and the socket file is gone.
#[test]
fn daemon_survives_hostile_clients_and_sigterm_drains_completely() {
    let dir = tempdir("hostile");
    let sock = dir.join("icd.sock");
    let out = dir.join("out");
    let mut daemon = spawn_daemon(
        &sock,
        &out,
        &["--trace", "--tenant-quota", "2", "--max-bad-lines", "4"],
    );
    wait_for_socket(&sock);

    // Three good clients, two campaigns each, interleaved arbitrarily.
    let apps = [["fft", "lu"], ["radix", "blackscholes"], ["canneal", "fft"]];
    let mut good: Vec<(String, CampaignSpec)> = Vec::new();
    for (c, pair) in apps.iter().enumerate() {
        for (j, app) in pair.iter().enumerate() {
            good.push((format!("g{c}-{j}"), spec(app, 1 + c as u64)));
        }
    }
    let mut clients = Vec::new();
    for (c, pair) in good.chunks(2).enumerate() {
        let sock = sock.clone();
        let pair = pair.to_vec();
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(&sock);
            for (id, spec) in &pair {
                let reply = client.request(&submission_line(id, &format!("good{c}"), spec));
                assert!(
                    reply.contains("\"enqueued\""),
                    "good submission accepted: {reply}"
                );
            }
        }));
    }

    // The quota tenant: budget 2, submits 3 — the third sheds.
    let quota_specs = [spec("lu", 7), spec("radix", 7), spec("fft", 7)];
    {
        let mut client = Client::connect(&sock);
        for (i, s) in quota_specs.iter().enumerate() {
            let reply = client.request(&submission_line(&format!("q{i}"), "greedy", s));
            if i < 2 {
                assert!(reply.contains("\"enqueued\""), "{reply}");
            } else {
                assert!(
                    reply.contains("\"shed\"") && reply.contains("quota-exceeded"),
                    "quota exhaustion is an explicit disposition: {reply}"
                );
            }
        }
    }

    // The flood client: more malformed lines than the kick threshold.
    {
        let mut client = Client::connect(&sock);
        for i in 0..4 {
            let reply = client.request(&format!("not json at all {i}"));
            assert!(reply.contains("\"error\""), "{reply}");
        }
        // The kick notice arrives, then EOF — and nobody else notices.
        let mut rest = String::new();
        let _ = client.reader.read_line(&mut rest);
        assert!(
            rest.contains("too many malformed lines"),
            "flooding client is told why it was dropped: {rest:?}"
        );
    }

    // The mid-line disconnect: a partial submission, then a vanishing
    // client. The fragment is dropped; the daemon keeps serving.
    {
        let mut stream = UnixStream::connect(&sock).unwrap();
        stream.write_all(b"{\"id\":\"torn\",\"spec\":{").unwrap();
        stream.flush().unwrap();
        drop(stream);
    }

    for c in clients {
        c.join().unwrap();
    }

    // Poll `status` until all eight accepted campaigns completed; the
    // daemon answered every hostile client without dying.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s = status(&sock);
        if counter(&s, "icd.completed") == 8 {
            assert_eq!(
                s.get("draining"),
                Some(&Value::Bool(false)),
                "still serving while hostile clients come and go"
            );
            assert_eq!(
                s.get("tenants")
                    .and_then(|t| t.get("greedy"))
                    .and_then(|g| g.get("shed"))
                    .and_then(Value::as_u64),
                Some(1)
            );
            assert!(counter(&s, "icd.bad_lines") >= 4);
            assert_eq!(counter(&s, "icd.conn.closed.kicked"), 1);
            assert_eq!(counter(&s, "icd.conn.closed.partial"), 1);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaigns never completed: {}",
            s.get("counters").map(|_| "").unwrap_or("no counters")
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // SIGTERM mid-service: a complete drain, artifacts on disk, socket
    // gone. Exit code 1 records the (expected) sheds and bad lines.
    sigterm(&daemon);
    let exit = wait_for_exit(&mut daemon);
    assert_eq!(exit.code(), Some(1), "degraded-but-drained exit");
    assert!(!sock.exists(), "socket file removed on signal exit");

    // Every accepted campaign's artifacts are byte-identical to solo
    // runs, regardless of client count, interleaving, disconnects, or
    // the drain trigger.
    let mut accepted = good.clone();
    accepted.push(("q0".to_owned(), quota_specs[0].clone()));
    accepted.push(("q1".to_owned(), quota_specs[1].clone()));
    for (id, spec) in &accepted {
        let (report, trace) = solo_artifacts(id, spec);
        let got_report = std::fs::read_to_string(out.join(format!("{id}.report.json"))).expect(id);
        assert_eq!(got_report, report, "{id}: report bytes == solo bytes");
        let got_trace = std::fs::read_to_string(out.join(format!("{id}.trace.jsonl"))).expect(id);
        assert_eq!(got_trace, trace, "{id}: trace bytes == solo bytes");
    }

    // The batch summary covers every parsed submission (8 accepted +
    // 1 quota shed; the torn fragment never became a submission), in
    // seq order, with the shed recorded explicitly.
    let summary = std::fs::read_to_string(out.join("batch.jsonl")).unwrap();
    let lines: Vec<&str> = summary.lines().collect();
    assert_eq!(lines.len(), 9);
    let seqs: Vec<u64> = lines
        .iter()
        .map(|l| {
            obs::json::parse(l)
                .unwrap()
                .get("seq")
                .unwrap()
                .as_u64()
                .unwrap()
        })
        .collect();
    assert_eq!(seqs, (0..9).collect::<Vec<u64>>(), "summary sorted by seq");
    assert!(summary.contains("\"q2\"") && summary.contains("quota-exceeded"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Binding refuses to clobber a live daemon's socket; a stale socket
/// left by a dead process is reclaimed.
#[test]
fn socket_binding_is_liveness_aware() {
    let dir = tempdir("bind");
    let sock = dir.join("icd.sock");
    let out_a = dir.join("a");
    let out_b = dir.join("b");

    let mut a = spawn_daemon(&sock, &out_a, &[]);
    wait_for_socket(&sock);

    // A second daemon on the same socket must refuse (exit 2) and must
    // not unlink the live listener.
    let mut b = spawn_daemon(&sock, &out_b, &[]);
    let exit_b = wait_for_exit(&mut b);
    assert_eq!(exit_b.code(), Some(2), "refuses a live socket");
    let reply = Client::connect(&sock).request("status");
    assert!(
        reply.contains("\"draining\":false"),
        "first daemon unharmed: {reply}"
    );

    // Socket-protocol drain: `{"draining":true}` reply, clean exit,
    // no socket file left.
    let reply = Client::connect(&sock).request("drain");
    assert!(reply.contains("\"draining\":true"), "{reply}");
    let exit_a = wait_for_exit(&mut a);
    assert_eq!(exit_a.code(), Some(0), "nothing submitted, clean drain");
    assert!(!sock.exists(), "socket removed on drain exit");

    // A stale socket file (listener long dead) is reclaimed on boot.
    drop(UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "stale socket file left behind");
    let mut c = spawn_daemon(&sock, &dir.join("c"), &[]);
    wait_for_socket(&sock);
    let reply = Client::connect(&sock).request("status");
    assert!(reply.contains("\"submitted\":0"), "{reply}");
    Client::connect(&sock).request("drain");
    let exit_c = wait_for_exit(&mut c);
    assert_eq!(exit_c.code(), Some(0));
    assert!(!sock.exists());

    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled client is disconnected at the idle deadline instead of
/// pinning a handler thread forever, and the daemon keeps serving.
#[test]
fn idle_clients_are_disconnected_at_the_deadline() {
    let dir = tempdir("idle");
    let sock = dir.join("icd.sock");
    let mut daemon = spawn_daemon(&sock, &dir.join("out"), &["--idle-timeout-ms", "200"]);
    wait_for_socket(&sock);

    let stream = UnixStream::connect(&sock).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    // Send nothing: the daemon must speak first, then hang up.
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("idle timeout"), "{reply:?}");
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).unwrap(), 0, "then EOF");

    let s = status(&sock);
    assert_eq!(counter(&s, "icd.conn.closed.idle-timeout"), 1);
    Client::connect(&sock).request("drain");
    let exit = wait_for_exit(&mut daemon);
    assert_eq!(exit.code(), Some(0));
    assert!(!sock.exists());

    let _ = std::fs::remove_dir_all(&dir);
}
