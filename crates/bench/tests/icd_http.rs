//! Telemetry-plane end-to-end suite: drives the real `icd` binary with
//! the HTTP listener (`--http`) bound next to the unix-socket intake
//! and proves the observability contracts:
//!
//! * **Strictly observational** — with `/status`, `/metrics`, and
//!   `/profile` scraped throughout a campaign batch (and the heartbeat
//!   writer running), every campaign's report/trace artifacts stay
//!   byte-identical to solo checker runs.
//! * **Fault isolation on the HTTP side** — a malformed request line,
//!   oversized headers, a mid-request disconnect, and a slow-loris
//!   stall each cost exactly that connection (explicit 400/431/408 or
//!   a silent drop); the next well-formed scrape succeeds.
//! * **Valid exposition** — `/metrics` is parseable Prometheus text
//!   (v0.0.4) and the wait histograms (`icd_queue_dwell_seconds`,
//!   `icd_cache_acquire_seconds`) carry observed samples.
//! * **Drain visibility** — the plane answers during a SIGTERM drain,
//!   reporting `"draining":true`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use instantcheck::{CampaignSpec, CheckReport, Checker, CheckerConfig, Scheme};
use obs::json::Value;
use obs::MemorySink;
use sched::{ProgramSource, Resolver};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icd-http-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The same workload-id resolver the `icd` binary uses.
fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        instantcheck_workloads::by_name(app, scaled).map(|a| a.build)
    })
}

fn spec(app: &str, seed: u64) -> CampaignSpec {
    CampaignSpec::new(format!("{app}:scaled"), Scheme::HwInc)
        .with_runs(3)
        .with_base_seed(seed)
}

fn submission_line(id: &str, spec: &CampaignSpec) -> String {
    format!("{{\"id\":\"{id}\",\"spec\":{}}}", spec.to_json())
}

/// The solo reference artifacts: `(report_json, trace_jsonl)`.
fn solo_artifacts(id: &str, spec: &CampaignSpec) -> (String, String) {
    let sink = Arc::new(MemorySink::new());
    let cfg = CheckerConfig::from_spec(spec).with_sink(Arc::clone(&sink) as _);
    let source = resolver()(&spec.workload).expect("registered workload");
    let runs = Checker::new(cfg)
        .expect("valid spec")
        .collect_runs(&move || source())
        .expect("campaign completes");
    let report = CheckReport::from_runs(&runs);
    let baseline = corpus::CampaignBaseline::capture(
        id,
        &spec.workload,
        spec.scheme,
        spec.base_seed,
        &runs[0],
        &report,
    );
    (baseline.to_json(), sink.to_jsonl())
}

/// Spawns the daemon with `--http 127.0.0.1:0` and learns the bound
/// address from its startup banner on stderr (the rest of stderr keeps
/// draining in the background so the pipe never fills).
fn spawn_daemon(sock: &Path, out: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_icd"));
    cmd.arg("--socket")
        .arg(sock)
        .arg("--out")
        .arg(out)
        .arg("--http")
        .arg("127.0.0.1:0")
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("daemon spawns");
    let stderr = child.stderr.take().unwrap();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut tx = Some(tx);
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if let Some(rest) = line.strip_prefix("icd: telemetry on http://") {
                if let (Some(tx), Some(addr)) = (tx.take(), rest.split_whitespace().next()) {
                    let _ = tx.send(addr.to_owned());
                }
            }
        }
    });
    let addr = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("daemon announces its http address")
        .parse()
        .expect("announced address parses");
    (child, addr)
}

fn wait_for_socket(path: &Path) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        if UnixStream::connect(path).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon never started listening on {}", path.display());
}

fn wait_for_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    while Instant::now() < deadline {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let _ = child.kill();
    panic!("daemon did not exit within the watchdog window");
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -TERM failed");
}

/// One line-protocol submission client over the unix socket.
fn submit(sock: &Path, line: &str) -> String {
    let stream = UnixStream::connect(sock).expect("intake connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writeln!(writer, "{line}").expect("request writes");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("reply");
    reply.trim_end().to_owned()
}

/// Sends raw bytes to the HTTP port and returns whatever comes back
/// until EOF — hostile clients must tolerate resets, so errors just
/// truncate the reply.
fn raw_http(addr: SocketAddr, payload: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let _ = stream.write_all(payload);
    let mut reply = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => reply.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8_lossy(&reply).into_owned()
}

fn http_get(addr: SocketAddr, path: &str) -> String {
    raw_http(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: icd\r\n\r\n").as_bytes(),
    )
}

/// Splits an HTTP reply into (status line, headers, body).
fn split_reply(reply: &str) -> (&str, &str, &str) {
    let (head, body) = reply.split_once("\r\n\r\n").unwrap_or((reply, ""));
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status, headers, body)
}

/// Minimal Prometheus text-format validation: every non-comment line
/// is `name[{labels}] value` with a parseable float value and a legal
/// metric-name head.
fn assert_valid_exposition(body: &str) {
    let mut samples = 0usize;
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line has no value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "illegal metric name in {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition body was empty");
}

/// A histogram's `_count` sample from an exposition body, 0 if absent.
fn exposition_count(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name}_count ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The headline scenario in one daemon lifetime: a campaign batch
/// scraped throughout, four hostile HTTP clients mid-batch, then
/// SIGTERM — artifacts byte-identical to solo, metrics valid with
/// observed wait samples, heartbeat and profile artifacts on disk.
#[test]
fn http_plane_is_observational_and_fault_isolated() {
    let dir = tempdir("plane");
    let sock = dir.join("icd.sock");
    let out = dir.join("out");
    let (mut daemon, addr) = spawn_daemon(&sock, &out, &["--trace", "--heartbeat-ms", "20"]);
    wait_for_socket(&sock);

    // Before any work: all three endpoints answer.
    let (status, headers, body) = {
        let reply = http_get(addr, "/status");
        let (s, h, b) = split_reply(&reply);
        (s.to_owned(), h.to_owned(), b.to_owned())
    };
    assert!(status.starts_with("HTTP/1.1 200 "), "{status}");
    assert!(headers.contains("application/json"), "{headers}");
    let v = obs::json::parse(body.trim()).expect("status body parses");
    assert_eq!(v.get("draining"), Some(&Value::Bool(false)));

    // Submit six campaigns while a scraper hammers the plane.
    let batch: Vec<(String, CampaignSpec)> =
        ["fft", "lu", "radix", "canneal", "blackscholes", "fft"]
            .iter()
            .enumerate()
            .map(|(i, app)| (format!("c{i}"), spec(app, 1 + (i as u64 % 2))))
            .collect();
    for (id, s) in &batch {
        let reply = submit(&sock, &submission_line(id, s));
        assert!(reply.contains("\"enqueued\""), "{reply}");
    }

    // Hostile HTTP clients, interleaved with the running batch. Each
    // gets its explicit close; none takes the listener down.
    let reply = raw_http(addr, b"TOTALLY bogus\r\n\r\n");
    assert!(
        reply.starts_with("HTTP/1.1 400 "),
        "malformed line: {reply}"
    );
    let mut oversized = Vec::from(&b"GET /status HTTP/1.1\r\n"[..]);
    while oversized.len() <= 8192 {
        oversized.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    let reply = raw_http(addr, &oversized);
    assert!(
        reply.starts_with("HTTP/1.1 431 "),
        "oversized head: {reply}"
    );
    {
        // Mid-request disconnect: a torn request line, then gone.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /sta").unwrap();
        drop(stream);
    }
    let reply = http_get(addr, "/nowhere");
    assert!(reply.starts_with("HTTP/1.1 404 "), "{reply}");
    let reply = raw_http(addr, b"POST /status HTTP/1.1\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 405 "), "{reply}");

    // The plane still answers the next well-formed client.
    assert!(http_get(addr, "/status").starts_with("HTTP/1.1 200 "));

    // Wait for the batch to complete, scraping /status for progress.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let reply = http_get(addr, "/status");
        let (_, _, body) = split_reply(&reply);
        let v = obs::json::parse(body.trim()).expect("status parses");
        let completed = v
            .get("counters")
            .and_then(|c| c.get("icd.completed"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if completed == batch.len() as u64 {
            break;
        }
        assert!(Instant::now() < deadline, "batch never completed");
        std::thread::sleep(Duration::from_millis(50));
    }

    // /metrics: valid exposition, right content type, observed waits.
    let reply = http_get(addr, "/metrics");
    let (status, headers, body) = split_reply(&reply);
    assert!(status.starts_with("HTTP/1.1 200 "), "{status}");
    assert!(
        headers.contains("text/plain; version=0.0.4"),
        "exposition content type: {headers}"
    );
    assert_valid_exposition(body);
    assert_eq!(
        exposition_count(body, "icd_queue_dwell_seconds"),
        batch.len() as u64,
        "one dwell observation per campaign"
    );
    // Pre-registered even without a corpus attached; the cache
    // counter series themselves only export when a cache exists.
    assert!(body.contains("icd_cache_acquire_seconds"));
    assert!(body.contains("icd_http_requests_total"));
    assert!(body.contains("icd_http_closed_bad_request_total 1"));
    assert!(body.contains("icd_http_closed_too_large_total 1"));

    // /profile: the wall-clock snapshot round-trips and carries worker
    // lanes plus the dwell histogram.
    let reply = http_get(addr, "/profile");
    let (status, _, body) = split_reply(&reply);
    assert!(status.starts_with("HTTP/1.1 200 "), "{status}");
    let v = obs::json::parse(body.trim()).expect("profile parses");
    let snap = obs::TelemetrySnapshot::from_json(v.get("telemetry").expect("telemetry key"))
        .expect("snapshot round-trips");
    assert_eq!(snap.histograms["icd.queue.dwell"].count, batch.len() as u64);
    assert!(
        snap.lanes.iter().any(|l| l.lane.starts_with("icd.w")),
        "worker lanes recorded"
    );

    // SIGTERM: the plane answers during the drain window, then the
    // daemon exits cleanly with artifacts on disk.
    sigterm(&daemon);
    let mut saw_draining = false;
    for _ in 0..100 {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            break;
        };
        let _ = stream.write_all(b"GET /status HTTP/1.1\r\n\r\n");
        let mut reply = Vec::new();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => reply.extend_from_slice(&chunk[..n]),
            }
        }
        let reply = String::from_utf8_lossy(&reply).into_owned();
        if reply.contains("\"draining\":true") {
            saw_draining = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_draining, "the plane answered during the SIGTERM drain");
    let exit = wait_for_exit(&mut daemon);
    assert_eq!(exit.code(), Some(0), "clean drain");

    // Byte-identity: telemetry plane fully on, artifacts unchanged.
    for (id, s) in &batch {
        let (report, trace) = solo_artifacts(id, s);
        let got = std::fs::read_to_string(out.join(format!("{id}.report.json"))).expect(id);
        assert_eq!(got, report, "{id}: report bytes == solo bytes with --http");
        let got = std::fs::read_to_string(out.join(format!("{id}.trace.jsonl"))).expect(id);
        assert_eq!(got, trace, "{id}: trace bytes == solo bytes with --http");
    }

    // The wall-clock artifacts landed too: a parseable heartbeat trail
    // and the final profile snapshot.
    let heartbeat = std::fs::read_to_string(out.join("heartbeat.jsonl")).expect("heartbeat");
    assert!(!heartbeat.lines().next().unwrap_or("").is_empty());
    for line in heartbeat.lines() {
        let v = obs::json::parse(line).expect("heartbeat line parses");
        assert!(v.get("uptime_ns").is_some());
    }
    let profile = std::fs::read_to_string(out.join("profile.json")).expect("profile artifact");
    let v = obs::json::parse(&profile).expect("profile artifact parses");
    obs::TelemetrySnapshot::from_json(v.get("telemetry").expect("telemetry key"))
        .expect("artifact snapshot round-trips");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A slow-loris client — connected, trickling, never finishing its
/// request head — is cut at the idle deadline with `408`, and the
/// daemon keeps serving.
#[test]
fn slow_loris_is_cut_at_the_idle_deadline() {
    let dir = tempdir("loris");
    let sock = dir.join("icd.sock");
    let (mut daemon, addr) = spawn_daemon(&sock, &dir.join("out"), &[]);
    wait_for_socket(&sock);

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"GET /status HTTP/1.1\r\nX-Slow:")
        .unwrap();
    // Never send the final CRLFCRLF; the server must speak first.
    let mut reply = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => reply.extend_from_slice(&chunk[..n]),
        }
    }
    let reply = String::from_utf8_lossy(&reply);
    assert!(
        reply.starts_with("HTTP/1.1 408 "),
        "slow loris got the idle cut: {reply}"
    );

    // Only that connection paid; the next scrape is fine.
    assert!(http_get(addr, "/status").starts_with("HTTP/1.1 200 "));

    submit(&sock, "drain");
    let exit = wait_for_exit(&mut daemon);
    assert_eq!(exit.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}
