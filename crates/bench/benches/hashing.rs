//! Micro-benchmarks of the hashing substrate: the per-store cost of the
//! incremental hash (the operation HW-InstantCheck performs in
//! hardware), the clustered MHM designs, full-state traversal hashing,
//! FP round-off, and the write-allocate cache model.

use std::hint::black_box;

use adhash::{hash_full_state, FpRound, IncHasher, LocationHasher, Mix64Hasher};
use instantcheck_bench::timing::bench;
use mhm::{ClusterOp, ClusteredMhm, L1Cache, MhmCore};

fn main() {
    let h = Mix64Hasher::default();
    let mut i = 0u64;
    bench("location_hash", || {
        i = i.wrapping_add(1);
        black_box(h.hash_location(black_box(0x1000 + i), black_box(i)))
    });

    // The fused write delta (5 avalanche rounds) against the two-call
    // path it replaces (6 rounds via two `location_hash` calls).
    let h = Mix64Hasher::default();
    let mut i = 0u64;
    bench("hash_delta_fused", || {
        i = i.wrapping_add(1);
        black_box(h.hash_delta(black_box(0x1000 + i), black_box(i), black_box(i + 1)))
    });

    let mut inc = IncHasher::new(Mix64Hasher::default());
    let mut i = 0u64;
    bench("inc_hasher_on_write", || {
        i = i.wrapping_add(1);
        inc.on_write(black_box(0x1000 + (i % 64)), black_box(i), black_box(i + 1));
        black_box(inc.sum())
    });

    let mut core = MhmCore::new();
    let mut i = 0u64;
    bench("mhm_core_on_store", || {
        i = i.wrapping_add(1);
        core.on_store(
            black_box(0x1000 + (i % 64)),
            black_box(i),
            black_box(i + 1),
            false,
        );
        black_box(core.th())
    });

    let mut core = MhmCore::new();
    core.start_fp_rounding();
    let mut i = 0u64;
    bench("mhm_core_on_store_fp_rounded", || {
        i = i.wrapping_add(1);
        let v = (i as f64 * 0.001).to_bits();
        core.on_store(black_box(0x1000), black_box(v), black_box(v ^ 1), true);
        black_box(core.th())
    });

    // Ablation: throughput of the Figure 3(b) clustered design as the
    // cluster count grows (all functionally equivalent).
    for clusters in [1usize, 2, 4, 8] {
        let mut m = ClusteredMhm::new(clusters);
        let mut i = 0u64;
        bench(&format!("clustered_mhm/{clusters}"), || {
            i = i.wrapping_add(1);
            m.dispatch(
                (i as usize) % clusters,
                ClusterOp::MinusOld {
                    addr: i % 64,
                    value: i,
                },
            );
            m.dispatch(
                (i as usize + 1) % clusters,
                ClusterOp::PlusNew {
                    addr: i % 64,
                    value: i + 1,
                },
            );
            black_box(m.th())
        });
    }

    // Traversal hashing cost per state size — the SW-InstantCheck_Tr
    // per-checkpoint cost that Figure 6 charges at 5 instr/byte.
    for words in [256usize, 4096, 65536] {
        let state: Vec<(u64, u64)> = (0..words as u64)
            .map(|i| (0x1000 + i, i.wrapping_mul(31)))
            .collect();
        let h = Mix64Hasher::default();
        bench(&format!("traversal_hash/{words}_words"), || {
            black_box(hash_full_state(&h, state.iter().copied()))
        });
    }

    for (name, round) in [
        ("mask_mantissa", FpRound::MaskMantissa { bits: 16 }),
        ("floor_decimal", FpRound::FloorDecimal { digits: 3 }),
        ("nearest_decimal", FpRound::NearestDecimal { digits: 3 }),
    ] {
        let mut i = 0u64;
        bench(&format!("fp_round/{name}"), || {
            i = i.wrapping_add(1);
            black_box(round.apply_bits(black_box((i as f64 * 0.1).to_bits())))
        });
    }

    let mut l1 = L1Cache::new(64, 4, 64);
    let mut i = 0u64;
    bench("l1_store_plus_mhm_read", || {
        i = i.wrapping_add(1);
        let addr = (i * 8) % (1 << 20);
        l1.store(black_box(addr));
        black_box(l1.mhm_read_old(addr))
    });
}
