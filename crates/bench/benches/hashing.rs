//! Criterion micro-benchmarks of the hashing substrate: the per-store
//! cost of the incremental hash (the operation HW-InstantCheck performs
//! in hardware), the clustered MHM designs, full-state traversal
//! hashing, FP round-off, and the write-allocate cache model.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adhash::{hash_full_state, FpRound, IncHasher, LocationHasher, Mix64Hasher};
use mhm::{ClusterOp, ClusteredMhm, L1Cache, MhmCore};

fn bench_location_hash(c: &mut Criterion) {
    let h = Mix64Hasher::default();
    c.bench_function("location_hash", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(h.hash_location(black_box(0x1000 + i), black_box(i)))
        })
    });
}

fn bench_incremental_store(c: &mut Criterion) {
    c.bench_function("inc_hasher_on_write", |b| {
        let mut inc = IncHasher::new(Mix64Hasher::default());
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            inc.on_write(black_box(0x1000 + (i % 64)), black_box(i), black_box(i + 1));
            black_box(inc.sum())
        })
    });

    c.bench_function("mhm_core_on_store", |b| {
        let mut core = MhmCore::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            core.on_store(black_box(0x1000 + (i % 64)), black_box(i), black_box(i + 1), false);
            black_box(core.th())
        })
    });

    c.bench_function("mhm_core_on_store_fp_rounded", |b| {
        let mut core = MhmCore::new();
        core.start_fp_rounding();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let v = (i as f64 * 0.001).to_bits();
            core.on_store(black_box(0x1000), black_box(v), black_box(v ^ 1), true);
            black_box(core.th())
        })
    });
}

fn bench_clustered_designs(c: &mut Criterion) {
    // Ablation: throughput of the Figure 3(b) clustered design as the
    // cluster count grows (all functionally equivalent).
    let mut group = c.benchmark_group("clustered_mhm");
    for clusters in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clusters),
            &clusters,
            |b, &k| {
                let mut m = ClusteredMhm::new(k);
                let mut i = 0u64;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    m.dispatch(
                        (i as usize) % k,
                        ClusterOp::MinusOld { addr: i % 64, value: i },
                    );
                    m.dispatch(
                        (i as usize + 1) % k,
                        ClusterOp::PlusNew { addr: i % 64, value: i + 1 },
                    );
                    black_box(m.th())
                })
            },
        );
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    // Traversal hashing cost per state size — the SW-InstantCheck_Tr
    // per-checkpoint cost that Figure 6 charges at 5 instr/byte.
    let mut group = c.benchmark_group("traversal_hash");
    for words in [256usize, 4096, 65536] {
        let state: Vec<(u64, u64)> =
            (0..words as u64).map(|i| (0x1000 + i, i.wrapping_mul(31))).collect();
        group.throughput(Throughput::Bytes(words as u64 * 8));
        group.bench_with_input(BenchmarkId::from_parameter(words), &state, |b, s| {
            let h = Mix64Hasher::default();
            b.iter(|| black_box(hash_full_state(&h, s.iter().copied())))
        });
    }
    group.finish();
}

fn bench_fp_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp_round");
    for (name, round) in [
        ("mask_mantissa", FpRound::MaskMantissa { bits: 16 }),
        ("floor_decimal", FpRound::FloorDecimal { digits: 3 }),
        ("nearest_decimal", FpRound::NearestDecimal { digits: 3 }),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(round.apply_bits(black_box((i as f64 * 0.1).to_bits())))
            })
        });
    }
    group.finish();
}

fn bench_cache_model(c: &mut Criterion) {
    c.bench_function("l1_store_plus_mhm_read", |b| {
        let mut l1 = L1Cache::new(64, 4, 64);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = (i * 8) % (1 << 20);
            l1.store(black_box(addr));
            black_box(l1.mhm_read_old(addr))
        })
    });
}

criterion_group!(
    benches,
    bench_location_hash,
    bench_incremental_store,
    bench_clustered_designs,
    bench_traversal,
    bench_fp_rounding,
    bench_cache_model,
);
criterion_main!(benches);
