//! Characterize the determinism of an application the way Table 1 does:
//! bit-exact check → FP round-off → small-structure isolation.
//!
//! ```sh
//! cargo run --example characterize_app            # default: cholesky
//! cargo run --example characterize_app -- pbzip2  # any registered app
//! ```

use instantcheck::{characterize, CheckerConfig, Scheme};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cholesky".to_owned());
    let app = instantcheck_workloads::by_name(&name, /* scaled: */ true).unwrap_or_else(|| {
        eprintln!("unknown app {name}; known apps:");
        for a in instantcheck_workloads::all_scaled() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(2);
    });

    let subject = app.subject();
    let template = CheckerConfig::new(Scheme::HwInc).with_runs(10);
    let c = characterize(&subject, &template).expect("runs complete");

    println!(
        "{} ({}, FP: {})",
        c.name,
        app.suite,
        if c.uses_fp { "yes" } else { "no" }
    );
    println!("  class                  : {}", c.class);
    println!("  deterministic as is    : {}", c.det_as_is());
    if let Some(run) = c.first_ndet_run() {
        println!("  bit-exact nondet found : run {run}");
    }
    if let Some(r) = &c.fp_rounded {
        println!(
            "  after FP rounding      : {}",
            if r.is_deterministic() {
                "deterministic"
            } else {
                "still nondeterministic"
            }
        );
    }
    if let Some(r) = &c.isolated {
        println!(
            "  after isolating structs: {}",
            if r.is_deterministic() {
                "deterministic"
            } else {
                "still nondeterministic"
            }
        );
    }
    let (det, ndet) = c.dyn_points();
    println!("  dynamic checking points: {det} deterministic / {ndet} nondeterministic");
    println!("  deterministic at end   : {}", c.det_at_end());

    let report = c.final_report();
    println!("  distributions (final configuration):");
    for (dist, count) in report.grouped_distributions().into_iter().take(6) {
        println!("    {count:>5} points behave {dist}");
    }
}
