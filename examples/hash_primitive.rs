//! The hardware primitive on its own (Sections 2.2, 3): per-core
//! incremental hashing, virtualization via save/restore, exclusion of a
//! variable from the hash, and the clustered highly-parallel design —
//! plus a §6.2-style exploration showing why state hashes prune
//! systematic testing better than happens-before.
//!
//! ```sh
//! cargo run --example hash_primitive
//! ```

use instantcheck_explorer::systematic::explore;
use mhm::{isa, ClusterOp, ClusteredMhm, MhmCore};
use tsim::{Program, ProgramBuilder, ValKind};

fn main() {
    // --- Figure 2: interleaving-independent state hashes -------------
    let g = 0x1000;
    let mut run_a = (MhmCore::new(), MhmCore::new());
    run_a.0.on_store(g, 2, 9, false); // thread 0 first
    run_a.1.on_store(g, 9, 12, false);
    let mut run_b = (MhmCore::new(), MhmCore::new());
    run_b.1.on_store(g, 2, 5, false); // thread 1 first
    run_b.0.on_store(g, 5, 12, false);
    println!("Figure 2: per-thread hashes differ across runs:");
    println!("  run A: TH0={} TH1={}", run_a.0.th(), run_a.1.th());
    println!("  run B: TH0={} TH1={}", run_b.0.th(), run_b.1.th());
    println!(
        "  …but the State Hash is identical: {} == {}\n",
        MhmCore::combine([&run_a.0, &run_a.1]),
        MhmCore::combine([&run_b.0, &run_b.1]),
    );

    // --- Figure 4 ISA: context switch + exclusion ---------------------
    let mut core = MhmCore::new();
    let mut mem = std::collections::HashMap::new();
    mem.insert(0x20u64, 7u64); // the store lands in memory…
    core.on_store(0x20, 0, 7, false); // …and the MHM hashes it
    isa::execute(
        &mut core,
        &mut mem,
        isa::Instruction::SaveHash { addr: 0x900 },
    );
    core.reset(); // another thread borrows the core…
    isa::execute(
        &mut core,
        &mut mem,
        isa::Instruction::RestoreHash { addr: 0x900 },
    );
    println!("ISA: TH register survives a context switch: {}", core.th());
    // Delete the variable from the hash: subtract its current value,
    // add back its initial (zero) value — Section 2.2.
    isa::execute_all(
        &mut core,
        &mut mem,
        &[
            isa::Instruction::MinusHash {
                addr: 0x20,
                is_fp: false,
            },
            isa::Instruction::PlusHash {
                addr: 0x20,
                val: 0,
                is_fp: false,
            },
        ],
    );
    println!("ISA: after deleting the variable, TH == {}\n", core.th());

    // --- Figure 3(b): clustered design equivalence --------------------
    let mut clustered = ClusteredMhm::new(4);
    clustered.dispatch(
        3,
        ClusterOp::PlusNew {
            addr: 0x40,
            value: 9,
        },
    );
    clustered.dispatch(
        0,
        ClusterOp::MinusOld {
            addr: 0x40,
            value: 2,
        },
    );
    let mut basic = MhmCore::new();
    basic.on_store(0x40, 2, 9, false);
    println!(
        "Clustered MHM (out-of-order, cross-cluster) == basic design: {}\n",
        clustered.th() == basic.th()
    );

    // --- §6.2: state hashes prune better than happens-before ----------
    fn commuting(n: usize) -> impl Fn() -> Program {
        move || {
            let mut b = ProgramBuilder::new(n);
            let g = b.global("G", ValKind::U64, 1);
            let lock = b.mutex();
            for t in 0..n as u64 {
                b.thread(move |ctx| {
                    ctx.lock(lock);
                    let v = ctx.load(g.at(0));
                    ctx.store(g.at(0), v + 10 * (t + 1));
                    ctx.unlock(lock);
                });
            }
            b.build()
        }
    }
    let stats = explore(commuting(3), 100_000).expect("exploration completes");
    println!("Systematic exploration of 3 commuting threads:");
    println!("  schedules executed    : {}", stats.executions);
    println!(
        "  happens-before classes: {} (CHESS must keep these)",
        stats.distinct_hb_classes
    );
    println!(
        "  distinct final states : {} (hash pruning keeps only this)",
        stats.distinct_final_states
    );
}
