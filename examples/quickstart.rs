//! Quickstart: check the external determinism of a small parallel
//! program — the paper's Figure 1 example.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use instantcheck::{Checker, CheckerConfig, Scheme};
use tsim::{Program, ProgramBuilder, ValKind};

/// Figure 1: two threads add their local value to a shared global under
/// a lock. The interleaving (and the intermediate values of G) differ
/// between runs, but the final state is always G == 12: *internally*
/// nondeterministic, *externally* deterministic.
fn figure1() -> Program {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    b.setup(move |s| s.store(g.at(0), 2)); // fixed input: G == 2
    for local in [7u64, 3u64] {
        b.thread(move |ctx| {
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v + local);
            ctx.unlock(lock);
        });
    }
    b.build()
}

/// The same program without the lock and with a non-commutative update:
/// last writer wins, so the final state depends on the schedule.
fn last_writer_wins() -> Program {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    for local in [7u64, 3u64] {
        b.thread(move |ctx| {
            ctx.store(g.at(0), local);
        });
    }
    b.build()
}

fn main() {
    // Run each program 20 times under random serialized schedules,
    // hashing the memory state at every checkpoint with the modeled
    // MHM hardware (HW-InstantCheck_Inc).
    let checker =
        Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(20)).expect("valid config");

    let report = checker.check(figure1).expect("runs complete");
    println!("figure1 (G += L under a lock):");
    println!("  deterministic        : {}", report.is_deterministic());
    println!("  checking points      : {}", report.aligned_checkpoints);
    println!(
        "  det / nondet points  : {} / {}",
        report.det_points, report.ndet_points
    );

    let report = checker.check(last_writer_wins).expect("runs complete");
    println!("last-writer-wins (racy, non-commutative):");
    println!("  deterministic        : {}", report.is_deterministic());
    println!(
        "  first nondet run     : {:?} (the paper reports detection in run 2-3)",
        report.first_ndet_run
    );
    println!(
        "  final-state spread   : {} over {} runs",
        report.distributions.last().expect("end checkpoint"),
        report.runs
    );
}
