//! Find and localize a real concurrency bug — the streamcluster story
//! from Section 7.2 of the paper, end to end:
//!
//! 1. check determinism at every dynamic barrier,
//! 2. notice that a window of internal barriers is nondeterministic even
//!    though the program *ends* deterministically (the bug is masked),
//! 3. re-execute the two differing runs with full state capture and map
//!    the differing addresses back to their variables (§2.3),
//! 4. verify the fixed version is deterministic everywhere.
//!
//! ```sh
//! cargo run --example find_a_bug
//! ```

use instantcheck::{localize, Checker, CheckerConfig, Scheme};
use instantcheck_workloads::apps::streamcluster;

fn main() {
    let buggy = streamcluster::spec_buggy_scaled();
    let fixed = streamcluster::spec_fixed_scaled();
    let checker =
        Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(12)).expect("valid config");

    // Step 1-2: check the original (buggy) code.
    let build = std::sync::Arc::clone(&buggy.build);
    let report = checker.check(move || build()).expect("runs complete");
    println!("streamcluster (original v2.1-style code):");
    println!("  deterministic at end : {}", report.det_at_end);
    println!(
        "  nondet checkpoints   : {} of {}",
        report.ndet_points, report.aligned_checkpoints
    );
    let first_bad =
        (0..report.aligned_checkpoints).find(|&i| !report.distributions[i].is_deterministic());
    println!("  first bad checkpoint : {first_bad:?}");
    println!("  => nondeterminism at internal barriers, masked by the end:");
    println!("     checking only final output would MISS this bug.\n");

    // Step 3: localize. Find two seeds that differ at the bad
    // checkpoint, then diff their full states there.
    let bad = first_bad.expect("the seeded bug manifests") as u64;
    let mut seed_b = None;
    for s in 2..40 {
        let build = std::sync::Arc::clone(&buggy.build);
        let probe = Checker::new(
            CheckerConfig::new(Scheme::HwInc)
                .with_runs(2)
                .with_base_seed(s),
        )
        .expect("valid config")
        .check(move || build())
        .expect("runs complete");
        if !probe.distributions[bad as usize].is_deterministic() {
            seed_b = Some(s + 1);
            break;
        }
    }
    let seed_b = seed_b.expect("two differing seeds exist");
    let build = std::sync::Arc::clone(&buggy.build);
    let loc = localize(move || build(), seed_b - 1, seed_b, bad, 0xfeed, None)
        .expect("localization runs complete");
    println!("state diff at checkpoint {bad} between two runs:");
    for (site, count) in loc.summary() {
        println!("  {count:>3} differing word(s) in {site}");
    }
    println!("  => the nondeterministic memory is the per-thread scratch that");
    println!("     reads the racy `center` publish — the order violation.\n");

    // Step 4: the fixed code.
    let build = std::sync::Arc::clone(&fixed.build);
    let report = checker.check(move || build()).expect("runs complete");
    println!("streamcluster (fixed):");
    println!("  deterministic        : {}", report.is_deterministic());
    println!(
        "  nondet checkpoints   : {} of {}",
        report.ndet_points, report.aligned_checkpoints
    );
}
