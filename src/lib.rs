//! Workspace umbrella crate for the InstantCheck reproduction.
//!
//! This crate exists to host the workspace-level runnable examples (in
//! `examples/`) and the cross-crate integration tests (in `tests/`). The
//! actual functionality lives in the member crates:
//!
//! * [`adhash`] — the incremental-hash substrate,
//! * [`tsim`] — the multithreaded-program simulator,
//! * [`mhm`] — the hardware Memory-State Hashing Module model,
//! * [`instantcheck`] — the determinism checker itself,
//! * [`instantcheck_workloads`] — the 17 application kernels,
//! * [`instantcheck_explorer`] — Section-6 applications of the primitive,
//! * [`corpus`] — the persistent campaign corpus and baseline store.

pub use adhash;
pub use corpus;
pub use instantcheck;
pub use instantcheck_explorer;
pub use instantcheck_workloads;
pub use mhm;
pub use tsim;
