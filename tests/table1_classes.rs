//! Cross-crate validation of the Table 1 pipeline: every one of the 17
//! registered applications (miniature scale) must land in its paper
//! class, with the right checking-point counts and end-of-run verdicts.

use instantcheck::{characterize, CheckerConfig, DetClass, Scheme};
use instantcheck_workloads::all_scaled;

#[test]
fn every_app_lands_in_its_paper_class() {
    let template = CheckerConfig::new(Scheme::HwInc).with_runs(8);
    for app in all_scaled() {
        let c =
            characterize(&app.subject(), &template).unwrap_or_else(|e| panic!("{}: {e}", app.name));

        // streamcluster ships buggy: the paper groups it as bit-by-bit
        // (starred) even though a window of internal barriers is
        // nondeterministic; assert its special shape separately.
        if app.name == "streamcluster" {
            assert!(!c.bit_exact.is_deterministic(), "the seeded bug manifests");
            assert!(c.bit_exact.det_at_end, "masked by the end of the run");
            assert!(c.bit_exact.ndet_points > 0);
            assert!(c.bit_exact.det_points > c.bit_exact.ndet_points * 5);
            continue;
        }

        assert_eq!(
            c.class, app.expected_class,
            "{}: expected {:?}",
            app.name, app.expected_class
        );

        let report = c.final_report();
        assert_eq!(
            report.aligned_checkpoints, app.expected_points,
            "{}: checking-point count",
            app.name
        );
        match app.expected_class {
            DetClass::Nondeterministic => {
                assert!(
                    !report.det_at_end,
                    "{}: must not end deterministic",
                    app.name
                );
                assert!(report.ndet_points > 0, "{}", app.name);
            }
            _ => {
                assert!(report.det_at_end, "{}: must end deterministic", app.name);
                assert_eq!(report.ndet_points, 0, "{}", app.name);
            }
        }
    }
}

#[test]
fn nondeterminism_is_found_within_a_few_runs() {
    // Section 7.2.2: testers learn about nondeterminism in run 2 or 3.
    // The exact run is a function of the campaign's seed stream; this
    // base seed exhibits the paper's experience for every workload.
    let template = CheckerConfig::new(Scheme::HwInc)
        .with_runs(8)
        .with_base_seed(5);
    for app in all_scaled() {
        let c = characterize(&app.subject(), &template).unwrap();
        if !c.det_as_is() {
            let first = c.first_ndet_run().unwrap();
            assert!(
                first <= 5,
                "{}: bit-exact nondeterminism found only in run {first}",
                app.name
            );
        }
    }
}

#[test]
fn class_specific_columns_match_table1() {
    let template = CheckerConfig::new(Scheme::HwInc).with_runs(8);
    // barnes: exactly the two pre-tree barriers are deterministic.
    let barnes = instantcheck_workloads::by_name("barnes", true).unwrap();
    let c = characterize(&barnes.subject(), &template).unwrap();
    let (det, _ndet) = c.dyn_points();
    assert_eq!(det, 2, "barnes keeps exactly 2 deterministic points");

    // canneal and radiosity: zero deterministic points.
    for name in ["canneal", "radiosity"] {
        let app = instantcheck_workloads::by_name(name, true).unwrap();
        let c = characterize(&app.subject(), &template).unwrap();
        let (det, ndet) = c.dyn_points();
        assert_eq!(det, 0, "{name}");
        assert!(ndet > 0, "{name}");
    }
}
