//! The observability determinism contract, checked end to end: a traced
//! campaign is a pure function of (workload, configuration, seed), so
//! running it twice yields byte-identical serialized traces, and traces
//! from different seeds differ exactly where the recorded events say
//! they do.

use std::sync::Arc;

use instantcheck::{Checker, CheckerConfig, Scheme};
use obs::{events_to_jsonl, Event, MemorySink};
use tsim::{Program, ProgramBuilder, ValKind};

fn last_writer() -> Program {
    // Nondeterministic: last writer wins, detected at the End checkpoint.
    let mut b = ProgramBuilder::new(3);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    for t in 0..3u64 {
        b.thread(move |ctx| {
            ctx.lock(lock);
            ctx.store(g.at(0), t + 1);
            ctx.unlock(lock);
        });
    }
    b.build()
}

fn commuting_sum() -> Program {
    let mut b = ProgramBuilder::new(4);
    let g = b.global("G", ValKind::U64, 1);
    let bar = b.barrier();
    let lock = b.mutex();
    for t in 0..4u64 {
        b.thread(move |ctx| {
            let p = ctx.malloc("scratch", tsim::TypeTag::u64s(), 2);
            ctx.store(p, t);
            ctx.barrier(bar);
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v + (t + 1) * 10);
            ctx.unlock(lock);
            ctx.free(p);
        });
    }
    b.build()
}

fn traced_campaign_jobs(source: fn() -> Program, base_seed: u64, jobs: usize) -> Vec<Event> {
    let sink = Arc::new(MemorySink::new());
    let cfg = CheckerConfig::new(Scheme::HwInc)
        .with_runs(6)
        .with_base_seed(base_seed)
        .with_cache_model()
        .with_jobs(jobs)
        .with_sink(sink.clone());
    Checker::new(cfg)
        .expect("valid config")
        .check(source)
        .expect("campaign completes");
    sink.events()
}

fn traced_campaign(source: fn() -> Program, base_seed: u64) -> Vec<Event> {
    traced_campaign_jobs(source, base_seed, 1)
}

#[test]
fn parallel_campaign_trace_is_byte_identical_to_serial() {
    // The parallel executor buffers each fanned-out slot's events and
    // flushes them in slot order, so the worker count must be invisible
    // in the serialized trace.
    for source in [commuting_sum as fn() -> Program, last_writer] {
        let serial = events_to_jsonl(&traced_campaign_jobs(source, 7, 1));
        for jobs in [2, 8] {
            let parallel = events_to_jsonl(&traced_campaign_jobs(source, 7, jobs));
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }
}

#[test]
fn same_seed_campaign_traces_are_byte_identical() {
    let a = traced_campaign(commuting_sum, 7);
    let b = traced_campaign(commuting_sum, 7);
    assert!(!a.is_empty());
    assert_eq!(events_to_jsonl(&a), events_to_jsonl(&b));

    // The JSONL round-trips losslessly, so re-serializing the parsed
    // trace is also byte-identical.
    let text = events_to_jsonl(&a);
    let reparsed = obs::parse_jsonl(&text).expect("trace parses");
    assert_eq!(events_to_jsonl(&reparsed), text);
}

#[test]
fn nondeterministic_campaign_traces_are_byte_identical_too() {
    // Determinism of the *trace* is about the checker being replayable,
    // not about the workload being deterministic.
    let a = traced_campaign(last_writer, 1);
    let b = traced_campaign(last_writer, 1);
    assert_eq!(events_to_jsonl(&a), events_to_jsonl(&b));
}

#[test]
fn differing_seeds_differ_at_the_recorded_divergent_checkpoint() {
    let a = traced_campaign(last_writer, 1);
    let b = traced_campaign(last_writer, 100);
    assert_ne!(
        events_to_jsonl(&a),
        events_to_jsonl(&b),
        "different base seeds schedule differently"
    );

    // Each trace records where the campaign first diverged from its own
    // first run; `last_writer` has a single End checkpoint, so the
    // divergence events must point at checkpoint 0, and the profile of
    // each trace agrees with the events.
    for trace in [&a, &b] {
        let divs: Vec<&Event> = trace.iter().filter(|e| e.name == "divergence").collect();
        assert!(!divs.is_empty(), "last-writer campaigns diverge");
        for d in &divs {
            assert_eq!(d.arg_u64("checkpoint"), Some(0));
        }
        let profile = obs::CampaignProfile::from_events(trace);
        assert_eq!(profile.divergences.len(), divs.len());
        assert_eq!(profile.divergences[0].checkpoint, Some(0));
    }
}
