//! Table 2 / Figure 7 end to end: the three seeded bugs (semantic,
//! atomicity violation, order violation — thread 3 only) all surface as
//! nondeterminism under the configuration that makes the unseeded
//! applications deterministic, with the det/nondet split determined by
//! when the bug strikes.

use adhash::FpRound;
use instantcheck::{Checker, CheckerConfig, Scheme};
use instantcheck_workloads::{seeded_bugs_scaled, AppSpec};

fn campaign(app: &AppSpec, runs: usize) -> instantcheck::CheckReport {
    let build = std::sync::Arc::clone(&app.build);
    let mut cfg = CheckerConfig::new(Scheme::HwInc).with_runs(runs);
    if app.uses_fp {
        cfg = cfg.with_rounding(FpRound::default());
    }
    Checker::new(cfg)
        .expect("valid config")
        .check(move || build())
        .unwrap()
}

#[test]
fn all_three_bug_types_are_detected() {
    for app in seeded_bugs_scaled() {
        let report = campaign(&app, 12);
        assert!(!report.is_deterministic(), "{}", app.name);
        assert!(report.ndet_points > 0, "{}", app.name);
        assert!(
            report.det_points > 0,
            "{}: the pre-bug phase is clean",
            app.name
        );
        assert!(
            report.first_ndet_run.unwrap() <= 10,
            "{}: detected quickly (paper: runs 3-6)",
            app.name
        );
    }
}

#[test]
fn nondeterminism_starts_at_the_bug_and_persists() {
    for app in seeded_bugs_scaled() {
        let report = campaign(&app, 12);
        let first_bad = (0..report.aligned_checkpoints)
            .find(|&i| !report.distributions[i].is_deterministic())
            .unwrap();
        // Water bugs corrupt cumulative state: everything after the
        // first bad checkpoint stays nondeterministic.
        if app.name.contains("water") {
            for i in first_bad..report.aligned_checkpoints {
                assert!(
                    !report.distributions[i].is_deterministic(),
                    "{}: checkpoint {i} went quiet again",
                    app.name
                );
            }
            assert!(!report.det_at_end, "{}", app.name);
        }
    }
}

#[test]
fn radix_order_violation_matches_table2_split_exactly() {
    // 12 checking points; the pass-3 pre-scan scatter corrupts
    // checkpoints 8..12 → 7 det / 5 ndet, Table 2's exact numbers
    // (scale-independent: the pass structure is fixed).
    let app = seeded_bugs_scaled()
        .into_iter()
        .find(|a| a.name.contains("order-violation"))
        .unwrap();
    let report = campaign(&app, 15);
    assert_eq!(report.aligned_checkpoints, 12);
    assert_eq!(report.det_points, 7, "Table 2: radix order violation");
    assert_eq!(report.ndet_points, 5);
}

#[test]
fn unseeded_counterparts_are_clean() {
    // The same campaigns on the unseeded apps report full determinism —
    // so everything Table 2 flags is the bug, not background noise.
    for name in ["waterNS", "waterSP", "radix"] {
        let app = instantcheck_workloads::by_name(name, true).unwrap();
        let report = campaign(&app, 12);
        assert!(report.is_deterministic(), "{name}");
    }
}
