//! The paper's running example (Figures 1 and 2), end to end: external
//! determinism despite internal nondeterminism, detected identically by
//! all three checking schemes.

use instantcheck::{Checker, CheckerConfig, Scheme};
use tsim::{Program, ProgramBuilder, RunConfig, SchedulerKind, ValKind};

fn figure1() -> Program {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    b.setup(move |s| s.store(g.at(0), 2));
    for local in [7u64, 3u64] {
        b.thread(move |ctx| {
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v + local);
            ctx.unlock(lock);
        });
    }
    b.build()
}

#[test]
fn externally_deterministic_under_every_scheme() {
    for scheme in [Scheme::HwInc, Scheme::SwInc, Scheme::SwTr] {
        let report = Checker::new(CheckerConfig::new(scheme).with_runs(15))
            .expect("valid config")
            .check(figure1)
            .unwrap();
        assert!(report.is_deterministic(), "{scheme:?}");
        assert_eq!(report.ndet_points, 0);
        assert!(report.det_at_end);
    }
}

#[test]
fn internal_nondeterminism_is_real() {
    // Force the two update orders and verify the intermediate value of G
    // differs (9 vs 5) while the final value is 12 either way — exactly
    // Figure 1(b) vs 1(c).
    let run_forced = |first: u32| {
        let script = std::sync::Arc::new(vec![first; 8]);
        figure1()
            .run(
                &RunConfig::random(0)
                    .with_trace()
                    .with_scheduler(SchedulerKind::Scripted { script }),
            )
            .unwrap()
    };
    let a = run_forced(0);
    let b = run_forced(1);
    let g = tsim::Addr(tsim::GLOBALS_BASE);
    assert_eq!(a.final_word(g), Some(12));
    assert_eq!(b.final_word(g), Some(12));

    // The store sequences differ: thread 0 first writes 9; thread 1
    // first writes 5.
    let intermediate = |out: &tsim::RunOutcome<tsim::NullMonitor>| {
        out.trace
            .as_ref()
            .unwrap()
            .accesses()
            .filter(|(e, _, w)| *w && matches!(e.op, tsim::TraceOp::Store(_)))
            .count()
    };
    assert_eq!(intermediate(&a), 2);
    assert_eq!(intermediate(&b), 2);
    assert_ne!(a.decisions, b.decisions);
}

#[test]
fn per_thread_hashes_differ_but_state_hash_agrees() {
    // The Figure 2 observation, measured on real runs: thread hashes can
    // differ between runs whose state hashes agree.
    use instantcheck::{CheckMonitor, IgnoreSpec};

    let run = |first: u32| {
        let script = std::sync::Arc::new(vec![first; 8]);
        let monitor = CheckMonitor::new(Scheme::HwInc, None, IgnoreSpec::new());
        figure1()
            .run_with(
                &RunConfig::random(0).with_scheduler(SchedulerKind::Scripted { script }),
                monitor,
            )
            .unwrap()
            .monitor
            .into_hashes()
    };
    let a = run(0);
    let b = run(1);
    assert_eq!(
        a.checkpoints.last().unwrap().hash,
        b.checkpoints.last().unwrap().hash,
        "external determinism: state hashes agree"
    );
}
