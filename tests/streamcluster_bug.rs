//! The Section 7.2 anecdote, end to end: the streamcluster order
//! violation is caught only because determinism is checked at every
//! dynamic barrier; it is masked at the end of the run; localization
//! points at the racy structures; and the fix makes everything
//! deterministic.

use instantcheck::{localize, Checker, CheckerConfig, Scheme};
use instantcheck_workloads::apps::streamcluster;

fn campaign(spec: &instantcheck_workloads::AppSpec, runs: usize) -> instantcheck::CheckReport {
    let build = std::sync::Arc::clone(&spec.build);
    Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(runs))
        .expect("valid config")
        .check(move || build())
        .unwrap()
}

#[test]
fn bug_manifests_only_inside_the_window_and_is_masked_at_end() {
    let report = campaign(&streamcluster::spec_buggy_scaled(), 12);
    assert!(!report.is_deterministic());
    assert!(report.det_at_end);
    let ndet: Vec<usize> = (0..report.aligned_checkpoints)
        .filter(|&i| !report.distributions[i].is_deterministic())
        .collect();
    // The scaled bug window is iterations [20, 26); its races surface at
    // barriers 21..=26.
    assert!(!ndet.is_empty());
    assert!(ndet.iter().all(|&i| (21..=26).contains(&i)), "{ndet:?}");
}

#[test]
fn fix_restores_full_determinism() {
    let report = campaign(&streamcluster::spec_fixed_scaled(), 12);
    assert!(report.is_deterministic());
    assert_eq!(report.ndet_points, 0);
}

#[test]
fn localization_names_the_racy_structures() {
    // Find a checkpoint where two specific seeds differ, then diff.
    let spec = streamcluster::spec_buggy_scaled();
    let report = campaign(&spec, 12);
    let bad = (0..report.aligned_checkpoints)
        .find(|&i| !report.distributions[i].is_deterministic())
        .expect("bug manifests") as u64;

    let mut found = None;
    for seed in 1..40 {
        let build = std::sync::Arc::clone(&spec.build);
        let loc = localize(move || build(), seed, seed + 1, bad, 0xfeed, None).unwrap();
        if !loc.is_empty() {
            found = Some(loc);
            break;
        }
    }
    let loc = found.expect("some seed pair differs at the bad checkpoint");
    let sites: Vec<String> = loc.summary().into_iter().map(|(s, _)| s).collect();
    assert!(
        sites
            .iter()
            .any(|s| s.contains("scratch") || s.contains("cost")),
        "localization should name the racy scratch/cost structures: {sites:?}"
    );
    assert!(
        !sites.iter().any(|s| s.contains("points")),
        "the read-only point set must not be implicated: {sites:?}"
    );
}

#[test]
fn checking_only_the_end_misses_the_bug() {
    let report = campaign(&streamcluster::spec_buggy_scaled(), 12);
    assert!(
        report.distributions.last().unwrap().is_deterministic(),
        "an end-only checker would declare the buggy code deterministic"
    );
}
