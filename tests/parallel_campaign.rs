//! The deterministic-reduction contract of the parallel campaign
//! executor: a checking campaign produces the same report, the same
//! serialized trace, and the same metrics snapshot whatever its worker
//! count, because the fanned-out slot results are reduced back in slot
//! order before anything escapes the checker.

use std::sync::Arc;

use instantcheck::{CheckReport, Checker, CheckerConfig, FailurePolicy, Scheme};
use instantcheck_workloads::stress;
use minicheck::{check, Gen};
use obs::{events_to_jsonl, MemorySink, Registry, Snapshot};
use tsim::{FaultKind, FaultPlan, Program, ProgramBuilder, Trigger, ValKind};

fn det_sum() -> Program {
    // Deterministic: commutative sum under a lock, with heap traffic so
    // the allocation-replay log matters.
    let mut b = ProgramBuilder::new(4);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    for t in 0..4u64 {
        b.thread(move |ctx| {
            let p = ctx.malloc("scratch", tsim::TypeTag::u64s(), 2);
            ctx.store(p, t);
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v + (t + 1) * 10);
            ctx.unlock(lock);
            ctx.free(p);
        });
    }
    b.build()
}

fn last_writer() -> Program {
    // Nondeterministic: last writer wins.
    let mut b = ProgramBuilder::new(3);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    for t in 0..3u64 {
        b.thread(move |ctx| {
            ctx.lock(lock);
            ctx.store(g.at(0), t + 1);
            ctx.unlock(lock);
        });
    }
    b.build()
}

/// Runs one traced, metered campaign and returns everything observable
/// about it.
fn observed(cfg: CheckerConfig, source: fn() -> Program) -> (CheckReport, String, Snapshot) {
    let sink = Arc::new(MemorySink::new());
    let reg = Arc::new(Registry::new());
    let report = Checker::new(cfg.with_sink(sink.clone()).with_registry(reg.clone()))
        .expect("valid config")
        .check(source)
        .expect("campaign completes");
    (report, events_to_jsonl(&sink.events()), reg.snapshot())
}

#[test]
fn worker_count_is_invisible_across_schemes_and_workloads() {
    check("parallel_reduction", 12, |g: &mut Gen| {
        let runs = 4 + g.usize_in(0, 4);
        let base = g.u64_in(0, 10_000);
        let scheme = *g.pick(&[Scheme::HwInc, Scheme::SwInc, Scheme::SwTr]);
        let source = *g.pick(&[det_sum as fn() -> Program, last_writer]);
        let traced = g.bool();
        let cfg = || {
            CheckerConfig::new(scheme)
                .with_runs(runs)
                .with_base_seed(base)
        };
        if traced {
            let (r1, t1, m1) = observed(cfg().with_jobs(1), source);
            for jobs in [2, 8] {
                let (r, t, m) = observed(cfg().with_jobs(jobs), source);
                assert_eq!(r1, r, "report (jobs={jobs})");
                assert_eq!(t1, t, "trace (jobs={jobs})");
                assert_eq!(m1, m, "metrics (jobs={jobs})");
            }
        } else {
            let r1 = Checker::new(cfg().with_jobs(1))
                .expect("valid config")
                .check(source)
                .unwrap();
            for jobs in [2, 8] {
                let r = Checker::new(cfg().with_jobs(jobs))
                    .expect("valid config")
                    .check(source)
                    .unwrap();
                assert_eq!(r1, r, "report (jobs={jobs})");
            }
        }
    });
}

#[test]
fn early_stop_truncates_at_the_same_run_for_all_worker_counts() {
    let at = |jobs: usize| {
        let sink = Arc::new(MemorySink::new());
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(30)
            .with_jobs(jobs)
            .with_sink(sink.clone());
        let (report, used) = Checker::new(cfg)
            .expect("valid config")
            .check_stopping_early(last_writer)
            .expect("campaign completes");
        (report, used, events_to_jsonl(&sink.events()))
    };
    let (serial_report, serial_used, serial_trace) = at(1);
    assert!(serial_used < 30, "last-writer diverges early");
    for jobs in [2, 8] {
        let (report, used, trace) = at(jobs);
        assert_eq!(serial_used, used, "stop point (jobs={jobs})");
        assert_eq!(serial_report, report, "report (jobs={jobs})");
        assert_eq!(serial_trace, trace, "trace (jobs={jobs})");
    }
}

#[test]
fn retried_campaign_reduces_identically() {
    // Seed window calibrated in tests/failure_policy.rs: seed 34 in
    // 10..40 deadlocks, so one slot fails and recovers under Retry.
    let cfg = || {
        CheckerConfig::new(Scheme::HwInc)
            .with_runs(30)
            .with_base_seed(10)
            .with_policy(FailurePolicy::Retry {
                max_retries: 3,
                reseed: true,
            })
    };
    let kernel = || stress::lock_order_hazard(32);
    let serial = Checker::new(cfg().with_jobs(1))
        .expect("valid config")
        .check(kernel)
        .unwrap();
    assert!(
        serial.failures.iter().all(|f| f.recovered),
        "the deadlocked slot recovers"
    );
    assert!(!serial.failures.is_empty());
    let parallel = Checker::new(cfg().with_jobs(4))
        .expect("valid config")
        .check(kernel)
        .unwrap();
    assert_eq!(serial, parallel, "failures and hashes reduce identically");
}

fn alloc_kernel() -> Program {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    for t in 0..2u64 {
        b.thread(move |ctx| {
            let p = ctx.malloc("scratch", tsim::TypeTag::u64s(), 2);
            ctx.store(p, (t + 1) * 3);
            let v = ctx.load(p);
            ctx.lock(lock);
            let acc = ctx.load(g.at(0));
            ctx.store(g.at(0), acc + v);
            ctx.unlock(lock);
            ctx.free(p);
        });
    }
    b.build()
}

#[test]
fn exhausted_skip_budget_fails_with_the_serial_error() {
    // Faults kill slots 1 and 3; budget 1 means the campaign must give
    // up at slot 3 — the parallel executor may *run* later slots before
    // the cancellation lands, but the reduction has to discard them and
    // surface slot 3's error exactly as the serial walk would.
    let plan = |s| FaultPlan::new(s).with(FaultKind::AllocFail, Trigger::Nth(0));
    let at = |jobs: usize| {
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(8)
            .with_jobs(jobs)
            .with_policy(FailurePolicy::Skip { max_failures: 1 })
            .with_fault_in_run(1, plan(1))
            .with_fault_in_run(3, plan(2));
        Checker::new(cfg)
            .expect("valid config")
            .check(alloc_kernel)
            .unwrap_err()
    };
    let serial = at(1);
    for jobs in [2, 8] {
        assert_eq!(serial, at(jobs), "jobs={jobs}");
    }
}

#[test]
fn within_budget_skips_reduce_identically() {
    let plan = FaultPlan::new(5).with(FaultKind::AllocFail, Trigger::Nth(0));
    let at = |jobs: usize| {
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(8)
            .with_jobs(jobs)
            .with_policy(FailurePolicy::Skip { max_failures: 2 })
            .with_fault_in_run(2, plan.clone());
        Checker::new(cfg)
            .expect("valid config")
            .check(alloc_kernel)
            .unwrap()
    };
    let serial = at(1);
    assert_eq!(serial.failures.len(), 1);
    for jobs in [2, 8] {
        assert_eq!(serial, at(jobs), "jobs={jobs}");
    }
}
