//! Pins the committed corpus baseline to the code: a fresh campaign must
//! reproduce `results/corpus/baselines/canneal-scaled-r8-s1.json` with no
//! drift, and the drift checker must flag a perturbed copy of it.

use std::path::PathBuf;

use corpus::{CampaignBaseline, Drift};
use instantcheck::{CheckReport, Checker, CheckerConfig, Scheme};

fn baselines_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("corpus")
        .join("baselines")
}

/// The exact campaign the committed baseline was recorded from:
/// `corpus record --app canneal --scaled --runs 8 --seed 1`.
fn campaign() -> (Vec<instantcheck::RunHashes>, CheckReport) {
    let app = instantcheck_workloads::by_name("canneal", true).expect("canneal is a workload");
    let build = std::sync::Arc::clone(&app.build);
    let cfg = CheckerConfig::new(Scheme::HwInc)
        .with_runs(8)
        .with_base_seed(1);
    let runs = Checker::new(cfg)
        .expect("valid config")
        .collect_runs(&move || build())
        .expect("campaign completes");
    let report = CheckReport::from_runs(&runs);
    (runs, report)
}

#[test]
fn committed_baseline_matches_a_fresh_campaign() {
    let baseline = CampaignBaseline::load(baselines_dir(), "canneal-scaled-r8-s1")
        .expect("committed baseline loads");
    let (runs, report) = campaign();
    let drifts = baseline.compare(&runs[0], &report);
    assert!(
        drifts.is_empty(),
        "the committed baseline drifted from the code:\n{}",
        drifts
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn drift_check_flags_a_perturbed_baseline() {
    let baseline = CampaignBaseline::load(baselines_dir(), "canneal-scaled-r8-s1")
        .expect("committed baseline loads");
    let (runs, report) = campaign();

    // One flipped bit in one reference hash must surface as drift at
    // exactly that checkpoint.
    let mut perturbed = baseline.clone();
    perturbed.reference[2].1 ^= 1 << 17;
    let drifts = perturbed.compare(&runs[0], &report);
    assert!(!drifts.is_empty(), "perturbed hash not flagged");
    match &drifts[0] {
        Drift::ReferenceHash { checkpoint, .. } => assert_eq!(*checkpoint, 2),
        other => panic!("expected a ReferenceHash drift, got {other:?}"),
    }

    // A perturbed summary verdict is flagged too.
    let mut perturbed = baseline.clone();
    perturbed.ndet_points += 1;
    let drifts = perturbed.compare(&runs[0], &report);
    assert!(drifts
        .iter()
        .any(|d| matches!(d, Drift::Summary { field, .. } if *field == "ndet_points")));

    // And a perturbed output digest.
    let mut perturbed = baseline;
    perturbed.output_digest ^= 0xdead_beef;
    let drifts = perturbed.compare(&runs[0], &report);
    assert!(drifts
        .iter()
        .any(|d| matches!(d, Drift::OutputDigest { .. })));
}
