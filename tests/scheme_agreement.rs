//! The three InstantCheck schemes must agree on every verdict: they are
//! different implementations (hardware incremental, software
//! incremental, software traversal) of the same check.

use adhash::FpRound;
use instantcheck::{Checker, CheckerConfig, Scheme};
use instantcheck_workloads::by_name;

fn verdict_profile(name: &str, scheme: Scheme, rounding: bool) -> (Vec<Vec<usize>>, bool) {
    let app = by_name(name, true).unwrap();
    let build = std::sync::Arc::clone(&app.build);
    let mut cfg = CheckerConfig::new(scheme).with_runs(8);
    if rounding {
        cfg = cfg.with_rounding(FpRound::default());
    }
    cfg = cfg.with_ignore(app.ignore.clone());
    let report = Checker::new(cfg)
        .expect("valid config")
        .check(move || build())
        .unwrap();
    (
        report
            .distributions
            .iter()
            .map(|d| d.counts().to_vec())
            .collect(),
        report.output_deterministic,
    )
}

#[test]
fn schemes_agree_on_deterministic_apps() {
    for name in ["fft", "volrend", "radix"] {
        let hw = verdict_profile(name, Scheme::HwInc, false);
        let sw = verdict_profile(name, Scheme::SwInc, false);
        let tr = verdict_profile(name, Scheme::SwTr, false);
        assert_eq!(hw, sw, "{name}");
        assert_eq!(hw, tr, "{name}");
        assert!(hw.0.iter().all(|d| d.len() == 1), "{name}: all det");
    }
}

#[test]
fn schemes_agree_on_nondeterministic_apps() {
    for name in ["canneal", "barnes"] {
        let hw = verdict_profile(name, Scheme::HwInc, false);
        let sw = verdict_profile(name, Scheme::SwInc, false);
        let tr = verdict_profile(name, Scheme::SwTr, false);
        assert_eq!(hw, sw, "{name}");
        assert_eq!(hw, tr, "{name}");
        assert!(hw.0.iter().any(|d| d.len() > 1), "{name}: some ndet");
    }
}

#[test]
fn schemes_agree_with_rounding_and_ignore_specs() {
    // cholesky uses all the machinery at once: FP rounding, free-list
    // exclusion, allocation replay, free-cancellation.
    for name in ["cholesky", "pbzip2", "sphinx3"] {
        let hw = verdict_profile(name, Scheme::HwInc, true);
        let sw = verdict_profile(name, Scheme::SwInc, true);
        let tr = verdict_profile(name, Scheme::SwTr, true);
        assert_eq!(hw, sw, "{name}");
        assert_eq!(hw, tr, "{name}");
        assert!(hw.0.iter().all(|d| d.len() == 1), "{name}: isolated => det");
        assert!(hw.1, "{name}: output deterministic");
    }
}

#[test]
fn traversal_confirms_incremental_on_the_fp_apps() {
    // The paper used its SW-Tr prototype to confirm the HW results; do
    // the same across the FP-precision group.
    for name in ["fluidanimate", "ocean", "waterNS", "waterSP"] {
        let hw_exact = verdict_profile(name, Scheme::HwInc, false);
        let tr_exact = verdict_profile(name, Scheme::SwTr, false);
        assert_eq!(hw_exact, tr_exact, "{name} (bit-exact)");
        let hw_round = verdict_profile(name, Scheme::HwInc, true);
        let tr_round = verdict_profile(name, Scheme::SwTr, true);
        assert_eq!(hw_round, tr_round, "{name} (rounded)");
        assert!(
            hw_round.0.iter().all(|d| d.len() == 1),
            "{name}: rounded => det"
        );
    }
}
