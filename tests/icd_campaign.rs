//! The orchestrator's two contracts, end to end over real workloads:
//!
//! * **Determinism under orchestration** — a 10-campaign batch produces
//!   byte-identical per-campaign report and trace artifacts whether
//!   each spec runs alone through the checker or under `icd` at widths
//!   1, 2, and 4, against both a cold and a warm shared corpus.
//! * **Graceful degradation** — submitting more campaigns than the
//!   queue bound yields explicit shed outcomes (never a hang or a
//!   panic), the shed submissions still appear in the drain output in
//!   submission order, and the shed counts land in the metrics
//!   snapshot.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use corpus::CorpusStore;
use instantcheck::{CampaignSpec, CheckReport, Checker, CheckerConfig, RunCache, Scheme};
use obs::MemorySink;
use sched::{
    CampaignStatus, Disposition, Orchestrator, OrchestratorConfig, ProgramSource, Resolver,
    ShedReason, Submission,
};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icd-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The same workload-id resolver the `icd` binary uses.
fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        instantcheck_workloads::by_name(app, scaled).map(|a| a.build)
    })
}

/// Ten campaigns: five scaled apps at two seeds each.
fn batch() -> Vec<Submission> {
    let apps = ["fft", "lu", "radix", "canneal", "blackscholes"];
    let mut subs = Vec::new();
    for seed in [1u64, 2] {
        for app in apps {
            let spec = CampaignSpec::new(format!("{app}:scaled"), Scheme::HwInc)
                .with_runs(3)
                .with_base_seed(seed);
            subs.push(Submission::new(format!("{app}-s{seed}"), spec));
        }
    }
    subs
}

/// The solo reference: the spec run directly through the checker, no
/// orchestrator, no corpus — `(report_json, trace_jsonl)`.
fn solo_artifacts(sub: &Submission) -> (String, String) {
    let sink = Arc::new(MemorySink::new());
    let cfg = CheckerConfig::from_spec(&sub.spec).with_sink(Arc::clone(&sink) as _);
    let source = resolver()(&sub.spec.workload).expect("registered workload");
    let runs = Checker::new(cfg)
        .expect("valid spec")
        .collect_runs(&move || source())
        .expect("campaign completes");
    let report = CheckReport::from_runs(&runs);
    let baseline = corpus::CampaignBaseline::capture(
        &sub.id,
        &sub.spec.workload,
        sub.spec.scheme,
        sub.spec.base_seed,
        &runs[0],
        &report,
    );
    (baseline.to_json(), sink.to_jsonl())
}

#[test]
fn batch_artifacts_are_byte_identical_at_widths_1_2_4_cold_and_warm() {
    let subs = batch();
    let reference: Vec<(String, String)> = subs.iter().map(solo_artifacts).collect();

    let dir = tempdir("det");
    // Width 1 runs against a cold corpus; widths 2 and 4 (and the
    // final width-1 pass) replay warm from the same store.
    for (pass, width) in [(0usize, 1usize), (1, 2), (2, 4), (3, 1)] {
        let store = Arc::new(CorpusStore::open(&dir).expect("corpus opens"));
        let config = OrchestratorConfig {
            width,
            trace: true,
            ..OrchestratorConfig::default()
        };
        let mut icd = Orchestrator::new(config, resolver(), Some(store as Arc<dyn RunCache>));
        icd.start();
        for sub in subs.clone() {
            assert_eq!(icd.submit(sub), Disposition::Enqueued);
        }
        let results = icd.drain();
        assert_eq!(results.len(), subs.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seq, i, "results in submission order");
            assert_eq!(r.id, subs[i].id);
            assert_eq!(
                r.status,
                CampaignStatus::Completed,
                "pass {pass} width {width} {}: {:?}",
                r.id,
                r.error
            );
            assert_eq!(
                r.report_json.as_deref(),
                Some(reference[i].0.as_str()),
                "pass {pass} width {width} {}: report bytes == solo bytes",
                r.id
            );
            assert_eq!(
                r.trace_jsonl.as_deref(),
                Some(reference[i].1.as_str()),
                "pass {pass} width {width} {}: trace bytes == solo bytes",
                r.id
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_explicitly_and_surfaces_in_metrics() {
    let subs = batch();
    let config = OrchestratorConfig {
        width: 2,
        queue_capacity: 4,
        ..OrchestratorConfig::default()
    };
    // Workers deliberately not started: every submission past the
    // queue bound must shed, deterministically.
    let mut icd = Orchestrator::new(config, resolver(), None);
    let dispositions: Vec<Disposition> = subs.into_iter().map(|s| icd.submit(s)).collect();
    assert!(dispositions[..4]
        .iter()
        .all(|d| *d == Disposition::Enqueued));
    assert!(dispositions[4..]
        .iter()
        .all(|d| *d == Disposition::Shed(ShedReason::QueueFull)));

    let snap = icd.registry().snapshot();
    assert_eq!(snap.counters.get("icd.submitted"), Some(&10));
    assert_eq!(snap.counters.get("icd.enqueued"), Some(&4));
    assert_eq!(snap.counters.get("icd.shed"), Some(&6));
    assert_eq!(snap.counters.get("icd.shed.queue-full"), Some(&6));

    // Drain still finishes the accepted four and reports all ten, in
    // order, with explicit terminal states.
    let results = icd.drain();
    assert_eq!(results.len(), 10);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.seq, i);
        if i < 4 {
            assert_eq!(r.status, CampaignStatus::Completed, "{:?}", r.error);
        } else {
            assert_eq!(r.status, CampaignStatus::Shed);
            assert_eq!(r.shed, Some(ShedReason::QueueFull));
        }
    }
}
