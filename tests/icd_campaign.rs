//! The orchestrator's two contracts, end to end over real workloads:
//!
//! * **Determinism under orchestration** — a 10-campaign batch produces
//!   byte-identical per-campaign report and trace artifacts whether
//!   each spec runs alone through the checker or under `icd` at widths
//!   1, 2, and 4, against both a cold and a warm shared corpus.
//! * **Graceful degradation** — submitting more campaigns than the
//!   queue bound yields explicit shed outcomes (never a hang or a
//!   panic), the shed submissions still appear in the drain output in
//!   submission order, and the shed counts land in the metrics
//!   snapshot.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use corpus::{Corpus, CorpusOptions};
use instantcheck::{CampaignSpec, CheckReport, Checker, CheckerConfig, Scheme};
use obs::MemorySink;
use sched::{
    CampaignStatus, Disposition, HttpOptions, HttpServer, Orchestrator, OrchestratorConfig,
    ProgramSource, Resolver, Service, ShedReason, Submission,
};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("icd-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The same workload-id resolver the `icd` binary uses.
fn resolver() -> Resolver {
    Arc::new(|workload: &str| -> Option<ProgramSource> {
        let (app, scale) = workload.split_once(':')?;
        let scaled = match scale {
            "scaled" => true,
            "full" => false,
            _ => return None,
        };
        instantcheck_workloads::by_name(app, scaled).map(|a| a.build)
    })
}

/// Ten campaigns: five scaled apps at two seeds each.
fn batch() -> Vec<Submission> {
    let apps = ["fft", "lu", "radix", "canneal", "blackscholes"];
    let mut subs = Vec::new();
    for seed in [1u64, 2] {
        for app in apps {
            let spec = CampaignSpec::new(format!("{app}:scaled"), Scheme::HwInc)
                .with_runs(3)
                .with_base_seed(seed);
            subs.push(Submission::new(format!("{app}-s{seed}"), spec));
        }
    }
    subs
}

/// The solo reference: the spec run directly through the checker, no
/// orchestrator, no corpus — `(report_json, trace_jsonl)`.
fn solo_artifacts(sub: &Submission) -> (String, String) {
    let sink = Arc::new(MemorySink::new());
    let cfg = CheckerConfig::from_spec(&sub.spec).with_sink(Arc::clone(&sink) as _);
    let source = resolver()(&sub.spec.workload).expect("registered workload");
    let runs = Checker::new(cfg)
        .expect("valid spec")
        .collect_runs(&move || source())
        .expect("campaign completes");
    let report = CheckReport::from_runs(&runs);
    let baseline = corpus::CampaignBaseline::capture(
        &sub.id,
        &sub.spec.workload,
        sub.spec.scheme,
        sub.spec.base_seed,
        &runs[0],
        &report,
    );
    (baseline.to_json(), sink.to_jsonl())
}

#[test]
fn batch_artifacts_are_byte_identical_at_widths_1_2_4_cold_and_warm() {
    let subs = batch();
    let reference: Vec<(String, String)> = subs.iter().map(solo_artifacts).collect();

    let dir = tempdir("det");
    // Width 1 runs against a cold corpus; widths 2 and 4 (and the
    // final width-1 pass) replay warm from the same store.
    for (pass, width) in [(0usize, 1usize), (1, 2), (2, 4), (3, 1)] {
        let store = Arc::new(Corpus::open(CorpusOptions::at(&dir)).expect("corpus opens"));
        let config = OrchestratorConfig {
            width,
            trace: true,
            ..OrchestratorConfig::default()
        };
        let mut icd = Orchestrator::new(config, resolver(), Some(store));
        icd.start();
        for sub in subs.clone() {
            assert_eq!(icd.submit(sub), Disposition::Enqueued);
        }
        let results = icd.drain();
        assert_eq!(results.len(), subs.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seq, i, "results in submission order");
            assert_eq!(r.id, subs[i].id);
            assert_eq!(
                r.status,
                CampaignStatus::Completed,
                "pass {pass} width {width} {}: {:?}",
                r.id,
                r.error
            );
            assert_eq!(
                r.report_json.as_deref(),
                Some(reference[i].0.as_str()),
                "pass {pass} width {width} {}: report bytes == solo bytes",
                r.id
            );
            assert_eq!(
                r.trace_jsonl.as_deref(),
                Some(reference[i].1.as_str()),
                "pass {pass} width {width} {}: trace bytes == solo bytes",
                r.id
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The daemon-shaped contract at the library level: N concurrent
/// "clients" (threads) interleaving submissions through one shared
/// [`Service`] must produce per-campaign artifacts byte-identical to
/// solo runs — arrival order across connections is allowed to vary
/// (submission `seq` is arrival-ordered), but artifact bytes, keyed by
/// campaign id, are not.
#[test]
fn concurrent_clients_produce_solo_identical_artifacts() {
    let subs = batch();
    let reference: BTreeMap<String, (String, String)> = subs
        .iter()
        .map(|s| (s.id.clone(), solo_artifacts(s)))
        .collect();

    let config = OrchestratorConfig {
        width: 2,
        trace: true,
        ..OrchestratorConfig::default()
    };
    let svc = Arc::new(Service::new(Orchestrator::new(config, resolver(), None)));
    let mut clients = Vec::new();
    for (client, chunk) in subs.chunks(3).enumerate() {
        let svc = Arc::clone(&svc);
        let chunk = chunk.to_vec();
        clients.push(std::thread::spawn(move || {
            for sub in chunk {
                let sub = sub.with_tenant(format!("client{client}"));
                assert_eq!(svc.submit(sub).1, Disposition::Enqueued);
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let results = svc.drain();
    assert_eq!(results.len(), subs.len());
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.seq, i, "results stay in submission order");
        assert_eq!(
            r.status,
            CampaignStatus::Completed,
            "{}: {:?}",
            r.id,
            r.error
        );
        let (report, trace) = &reference[&r.id];
        assert_eq!(
            r.report_json.as_deref(),
            Some(report.as_str()),
            "{}: report bytes == solo bytes under interleaved clients",
            r.id
        );
        assert_eq!(
            r.trace_jsonl.as_deref(),
            Some(trace.as_str()),
            "{}: trace bytes == solo bytes under interleaved clients",
            r.id
        );
    }
}

/// The telemetry plane is strictly observational: with the HTTP
/// listener bound and a client scraping `/status`, `/metrics`, and
/// `/profile` the whole time the batch runs, per-campaign artifacts
/// stay byte-identical to solo runs at widths 1, 2, and 4 (cold then
/// warm corpus). The test also pins that the wait histograms really
/// observed samples — queue dwell and cache acquisitions — so the
/// "telemetry changed nothing" result is not vacuous.
#[test]
fn live_scraping_telemetry_leaves_artifacts_byte_identical() {
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connects");
        let _ = stream.write_all(format!("GET {path} HTTP/1.1\r\n\r\n").as_bytes());
        let mut reply = Vec::new();
        let _ = stream.read_to_end(&mut reply);
        String::from_utf8_lossy(&reply).into_owned()
    }

    let subs = batch();
    let reference: Vec<(String, String)> = subs.iter().map(solo_artifacts).collect();

    let dir = tempdir("telemetry");
    for width in [1usize, 2, 4] {
        let store = Arc::new(Corpus::open(CorpusOptions::at(&dir)).expect("corpus opens"));
        let config = OrchestratorConfig {
            width,
            trace: true,
            ..OrchestratorConfig::default()
        };
        let svc = Arc::new(Service::new(Orchestrator::new(
            config,
            resolver(),
            Some(store),
        )));
        let mut server = HttpServer::bind("127.0.0.1:0", Arc::clone(&svc), HttpOptions::default())
            .expect("binds an ephemeral port");
        let addr = server.local_addr();

        // The scraper hammers every endpoint until the drain is done.
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    for path in ["/status", "/metrics", "/profile"] {
                        let reply = get(addr, path);
                        assert!(
                            reply.starts_with("HTTP/1.1 200 "),
                            "{path} under load: {}",
                            reply.lines().next().unwrap_or("")
                        );
                        scrapes += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                scrapes
            })
        };

        for sub in subs.clone() {
            assert_eq!(svc.submit(sub).1, Disposition::Enqueued);
        }
        let results = svc.drain();
        stop.store(true, Ordering::SeqCst);
        let scrapes = scraper.join().unwrap();
        assert!(scrapes > 0, "the scraper actually ran");

        assert_eq!(results.len(), subs.len());
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.status,
                CampaignStatus::Completed,
                "{}: {:?}",
                r.id,
                r.error
            );
            assert_eq!(
                r.report_json.as_deref(),
                Some(reference[i].0.as_str()),
                "width {width} {}: report bytes == solo bytes while scraped",
                r.id
            );
            assert_eq!(
                r.trace_jsonl.as_deref(),
                Some(reference[i].1.as_str()),
                "width {width} {}: trace bytes == solo bytes while scraped",
                r.id
            );
        }

        // The side channel really recorded: dwell once per campaign,
        // a cache acquisition timing on every corpus acquisition.
        let snap = svc.telemetry().snapshot();
        let dwell = &snap.histograms[sched::QUEUE_DWELL_HISTOGRAM];
        assert_eq!(dwell.count, subs.len() as u64, "one dwell per campaign");
        let acquires = &snap.histograms[corpus::CACHE_ACQUIRE_HISTOGRAM];
        assert!(acquires.count > 0, "cache acquisitions were timed");

        // And /metrics — served past drain — exposes both series with
        // their observed sample counts.
        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("icd_queue_dwell_seconds_count 10"));
        assert!(metrics.contains("icd_cache_acquire_seconds_count"));
        assert!(metrics.contains("icd_cache_probes_total"));
        server.shutdown();
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Quota-exceeded submissions get an explicit disposition, and the
/// accepted subset's artifacts still match solo bytes — one tenant
/// exhausting its budget cannot perturb anyone's results.
#[test]
fn quota_exceeded_sheds_but_accepted_subset_matches_solo_bytes() {
    let subs = batch();
    let config = OrchestratorConfig {
        tenant_quota: Some(2),
        ..OrchestratorConfig::default()
    };
    let svc = Service::new(Orchestrator::new(config, resolver(), None));
    // The first five submissions come from a greedy tenant with a
    // budget of two; the rest are spread over well-behaved tenants.
    for (i, sub) in subs.iter().cloned().enumerate() {
        let tenant = if i < 5 {
            "greedy".to_owned()
        } else {
            format!("t{i}")
        };
        let (_, d) = svc.submit(sub.with_tenant(tenant));
        if (2..5).contains(&i) {
            assert_eq!(d, Disposition::Shed(ShedReason::QuotaExceeded), "sub {i}");
        } else {
            assert_eq!(d, Disposition::Enqueued, "sub {i}");
        }
    }
    let results = svc.drain();
    assert_eq!(results.len(), subs.len());
    for (i, r) in results.iter().enumerate() {
        if (2..5).contains(&i) {
            assert_eq!(r.status, CampaignStatus::Shed);
            assert_eq!(r.shed, Some(ShedReason::QuotaExceeded));
            assert_eq!(r.tenant, "greedy");
        } else {
            assert_eq!(r.status, CampaignStatus::Completed, "{:?}", r.error);
            let (report, _) = solo_artifacts(&subs[i]);
            assert_eq!(
                r.report_json.as_deref(),
                Some(report.as_str()),
                "{}: accepted subset bytes == solo bytes",
                r.id
            );
        }
    }
}

#[test]
fn overload_sheds_explicitly_and_surfaces_in_metrics() {
    let subs = batch();
    let config = OrchestratorConfig {
        width: 2,
        queue_capacity: 4,
        ..OrchestratorConfig::default()
    };
    // Workers deliberately not started: every submission past the
    // queue bound must shed, deterministically.
    let mut icd = Orchestrator::new(config, resolver(), None);
    let dispositions: Vec<Disposition> = subs.into_iter().map(|s| icd.submit(s)).collect();
    assert!(dispositions[..4]
        .iter()
        .all(|d| *d == Disposition::Enqueued));
    assert!(dispositions[4..]
        .iter()
        .all(|d| *d == Disposition::Shed(ShedReason::QueueFull)));

    let snap = icd.registry().snapshot();
    assert_eq!(snap.counters.get("icd.submitted"), Some(&10));
    assert_eq!(snap.counters.get("icd.enqueued"), Some(&4));
    assert_eq!(snap.counters.get("icd.shed"), Some(&6));
    assert_eq!(snap.counters.get("icd.shed.queue-full"), Some(&6));

    // Drain still finishes the accepted four and reports all ten, in
    // order, with explicit terminal states.
    let results = icd.drain();
    assert_eq!(results.len(), 10);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.seq, i);
        if i < 4 {
            assert_eq!(r.status, CampaignStatus::Completed, "{:?}", r.error);
        } else {
            assert_eq!(r.status, CampaignStatus::Shed);
            assert_eq!(r.shed, Some(ShedReason::QueueFull));
        }
    }
}
