//! The persistent corpus, checked end to end through the checker: warm
//! campaigns replayed from disk are byte-identical to cold ones at any
//! worker count, corrupt records are quarantined and recomputed (never
//! trusted), and recorded baselines flag perturbation as drift.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use corpus::{CampaignBaseline, Corpus, CorpusOptions, Drift};
use instantcheck::{CheckReport, Checker, CheckerConfig, RunCache, Scheme};
use obs::{MemorySink, Registry};
use tsim::{Program, ProgramBuilder, ValKind};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corpus-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> Arc<Corpus> {
    Arc::new(Corpus::open(CorpusOptions::at(dir)).unwrap())
}

/// Deterministic, with a barrier checkpoint, heap traffic (exercising
/// the allocator-replay provenance in cache keys), and output.
fn commuting_sum() -> Program {
    let mut b = ProgramBuilder::new(4);
    let g = b.global("G", ValKind::U64, 1);
    let bar = b.barrier();
    let lock = b.mutex();
    for t in 0..4u64 {
        b.thread(move |ctx| {
            let p = ctx.malloc("scratch", tsim::TypeTag::u64s(), 2);
            ctx.store(p, t);
            ctx.barrier(bar);
            ctx.lock(lock);
            let v = ctx.load(g.at(0));
            ctx.store(g.at(0), v + (t + 1) * 10);
            ctx.unlock(lock);
            ctx.free(p);
        });
    }
    b.build()
}

/// Nondeterministic: last writer wins at the End checkpoint.
fn last_writer() -> Program {
    let mut b = ProgramBuilder::new(3);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    for t in 0..3u64 {
        b.thread(move |ctx| {
            ctx.lock(lock);
            ctx.store(g.at(0), t + 1);
            ctx.unlock(lock);
        });
    }
    b.build()
}

fn config(store: &Arc<Corpus>, jobs: usize) -> CheckerConfig {
    CheckerConfig::new(Scheme::HwInc)
        .with_runs(6)
        .with_jobs(jobs)
        .with_cache_model()
        .with_run_cache(Arc::clone(store) as _, "commuting_sum")
}

/// Runs one fully-instrumented campaign and returns every observable
/// surface: report, serialized trace, and metrics snapshot.
fn observed_campaign(store: &Arc<Corpus>, jobs: usize) -> (CheckReport, String, obs::Snapshot) {
    let sink = Arc::new(MemorySink::new());
    let reg = Arc::new(Registry::new());
    let cfg = config(store, jobs)
        .with_sink(sink.clone())
        .with_registry(reg.clone());
    let report = Checker::new(cfg)
        .expect("valid config")
        .check(commuting_sum)
        .expect("completes");
    (report, sink.to_jsonl(), reg.snapshot())
}

/// One framed record of a segment file, split for in-place mutation.
struct RawRecord {
    fp: u128,
    payload: Vec<u8>,
}

/// Reads every record of every segment under `dir`, in log order. The
/// frame grammar is `rec <fp:032x> <len> <sum:016x>\n<payload>`.
fn read_records(dir: &Path) -> (PathBuf, Vec<RawRecord>) {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir.join("segments"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    segs.sort();
    assert_eq!(segs.len(), 1, "the small campaign fits one segment");
    let bytes = fs::read(&segs[0]).unwrap();
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let nl = bytes[offset..].iter().position(|&b| b == b'\n').unwrap();
        let frame = std::str::from_utf8(&bytes[offset..offset + nl]).unwrap();
        let mut parts = frame.split(' ');
        assert_eq!(parts.next(), Some("rec"));
        let fp = u128::from_str_radix(parts.next().unwrap(), 16).unwrap();
        let len: usize = parts.next().unwrap().parse().unwrap();
        let payload_at = offset + nl + 1;
        records.push(RawRecord {
            fp,
            payload: bytes[payload_at..payload_at + len].to_vec(),
        });
        offset = payload_at + len;
    }
    (segs[0].clone(), records)
}

/// Rewrites a segment from (possibly mutated) records, re-framing each
/// payload so the file stays structurally scannable — read-time content
/// checks, not the scan, must be what rejects a damaged payload.
fn write_records(path: &PathBuf, records: &[RawRecord]) {
    let mut bytes = Vec::new();
    for rec in records {
        let sum = corpus::fnv64(&rec.payload);
        bytes.extend_from_slice(
            format!("rec {:032x} {} {:016x}\n", rec.fp, rec.payload.len(), sum).as_bytes(),
        );
        bytes.extend_from_slice(&rec.payload);
    }
    fs::write(path, bytes).unwrap();
}

#[test]
fn warm_disk_campaign_is_byte_identical_to_cold() {
    for jobs in [1usize, 8] {
        let dir = tempdir(&format!("warmcold-{jobs}"));
        let cold_store = open(&dir);
        let cold = observed_campaign(&cold_store, jobs);
        assert_eq!(cold_store.hits(), 0, "jobs={jobs}: first campaign is cold");
        assert_eq!(cold_store.run_count(), 6, "jobs={jobs}: all runs stored");

        // A fresh corpus over the same directory models a fresh
        // process: everything must replay from disk.
        let warm_store = open(&dir);
        let warm = observed_campaign(&warm_store, jobs);
        assert_eq!(cold.0, warm.0, "jobs={jobs}: report");
        assert_eq!(cold.1, warm.1, "jobs={jobs}: trace bytes");
        assert_eq!(cold.2, warm.2, "jobs={jobs}: campaign metrics");
        assert_eq!(warm_store.hits(), 6, "jobs={jobs}: every slot hit");
        assert_eq!(warm_store.stores(), 0, "jobs={jobs}: nothing re-stored");
        // The hit counters live in the store's own registry, visible
        // without perturbing the campaign metrics compared above.
        assert_eq!(
            warm_store.metrics().counters.get("corpus.hits"),
            Some(&6),
            "jobs={jobs}: hits visible in the store snapshot"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn corrupt_records_are_quarantined_and_recomputed() {
    let dir = tempdir("corrupt");
    let store = open(&dir);
    let cold = observed_campaign(&store, 1);
    drop(store);

    // Corrupt one stored record per read-time class: truncate one
    // payload against its own declared length, flip a body byte of
    // another, and stamp a third with a future entry version. Each
    // record is re-framed so the segment still scans — the entry's own
    // header, not the frame, is what must reject it.
    let (seg, mut records) = read_records(&dir);
    assert_eq!(records.len(), 6);
    let half = records[0].payload.len() / 2;
    records[0].payload.truncate(half);
    let last = records[1].payload.len() - 2;
    records[1].payload[last] ^= 0x40;
    let text = String::from_utf8(records[2].payload.clone()).unwrap();
    records[2].payload = text.replacen("icorpus 1", "icorpus 7", 1).into_bytes();
    write_records(&seg, &records);

    let warm_store = open(&dir);
    let warm = observed_campaign(&warm_store, 1);
    assert_eq!(cold.0, warm.0, "report survives corruption");
    assert_eq!(cold.1, warm.1, "trace survives corruption");
    assert_eq!(cold.2, warm.2, "metrics survive corruption");
    assert_eq!(warm_store.hits(), 3, "intact records replay");
    assert_eq!(warm_store.quarantined(), 3, "corrupt records quarantined");
    assert_eq!(
        warm_store.stores(),
        3,
        "corrupt records recomputed and re-stored"
    );
    assert_eq!(
        fs::read_dir(dir.join("quarantine")).unwrap().count(),
        3,
        "quarantine keeps the evidence"
    );
    let m = warm_store.metrics();
    for class in ["truncated", "bad-checksum", "version-mismatch"] {
        assert_eq!(
            m.counters.get(&format!("corpus.quarantined.{class}")),
            Some(&1),
            "one {class} quarantine"
        );
    }
    drop(warm_store);

    // The repaired corpus is fully warm again: the re-appended records
    // are later in the log than the corrupt ones, so the rebuild's
    // later-wins rule resolves every fingerprint to a good record.
    let healed = open(&dir);
    let again = observed_campaign(&healed, 1);
    assert_eq!(cold.0, again.0);
    assert_eq!(healed.hits(), 6);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_cached_lookup_never_trusts_a_tampered_hash() {
    // Flip a checkpoint-hash *and* fix nothing else: the entry checksum
    // rejects the record, so the campaign verdict cannot be poisoned.
    let dir = tempdir("tamper");
    let store = open(&dir);
    let cold = Checker::new(config(&store, 1))
        .expect("valid config")
        .check(commuting_sum)
        .unwrap();
    assert!(cold.is_deterministic());
    drop(store);

    let (seg, mut records) = read_records(&dir);
    for rec in &mut records {
        let text = String::from_utf8(rec.payload.clone()).unwrap();
        rec.payload = text.replacen("cp b:0 ", "cp b:0 f", 1).into_bytes();
    }
    write_records(&seg, &records);

    let warm_store = open(&dir);
    let warm = Checker::new(config(&warm_store, 1))
        .expect("valid config")
        .check(commuting_sum)
        .unwrap();
    assert_eq!(cold, warm, "tampered records recompute to the truth");
    assert!(warm.is_deterministic(), "no forged nondeterminism verdict");
    assert_eq!(warm_store.quarantined(), 6);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn perturbed_baseline_is_flagged_as_drift() {
    let dir = tempdir("baseline");
    let store = open(&dir);
    let baselines = store.baselines_dir().expect("on-disk corpus");
    let runs = Checker::new(config(&store, 1))
        .expect("valid config")
        .collect_runs(&commuting_sum)
        .unwrap();
    let report = CheckReport::from_runs(&runs);
    let baseline = CampaignBaseline::capture(
        "commuting-sum",
        "commuting_sum",
        Scheme::HwInc,
        1,
        &runs[0],
        &report,
    );
    baseline.save(&baselines).unwrap();

    // Round-tripped and compared against the same campaign: no drift.
    let loaded = CampaignBaseline::load(&baselines, "commuting-sum").unwrap();
    assert_eq!(loaded, baseline);
    assert!(loaded.compare(&runs[0], &report).is_empty());

    // A perturbed copy — one reference hash nudged — must be flagged,
    // localized to that checkpoint.
    let mut perturbed = loaded.clone();
    let idx = perturbed.reference.len() / 2;
    perturbed.reference[idx].1 ^= 1;
    let drifts = perturbed.compare(&runs[0], &report);
    assert!(!drifts.is_empty(), "perturbation detected");
    match &drifts[0] {
        Drift::ReferenceHash { checkpoint, .. } => assert_eq!(*checkpoint, idx),
        other => panic!("expected ReferenceHash, got {other:?}"),
    }

    // A genuinely different campaign (nondeterministic workload) drifts
    // on the summary verdicts too.
    let ndet_runs = Checker::new(CheckerConfig::new(Scheme::HwInc).with_runs(6))
        .expect("valid config")
        .collect_runs(&last_writer)
        .unwrap();
    let ndet_report = CheckReport::from_runs(&ndet_runs);
    let drifts = baseline.compare(&ndet_runs[0], &ndet_report);
    assert!(drifts
        .iter()
        .any(|d| matches!(d, Drift::Summary { field, .. } if *field == "ndet_points")));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_ephemeral_and_memory_caches_agree() {
    // The log-backed corpus, the ephemeral corpus, and the in-memory
    // reference implementation are interchangeable RunCache impls:
    // same campaign, same results.
    let dir = tempdir("parity");
    let disk = open(&dir);
    let ephemeral = Arc::new(Corpus::open(CorpusOptions::ephemeral()).unwrap());
    let memory = Arc::new(instantcheck::MemoryRunCache::new());
    let run = |cache: Arc<dyn RunCache>| {
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(4)
            .with_run_cache(cache, "commuting_sum");
        Checker::new(cfg)
            .expect("valid config")
            .check(commuting_sum)
            .unwrap()
    };
    let a = run(disk.clone());
    let b = run(memory.clone());
    let c = run(ephemeral.clone());
    assert_eq!(a, b);
    assert_eq!(a, c);
    // Warm reruns on all three also agree.
    let a2 = run(disk);
    let b2 = run(memory.clone());
    let c2 = run(ephemeral.clone());
    assert_eq!(a2, b2);
    assert_eq!(a2, c2);
    assert_eq!(a, a2);
    assert_eq!(memory.hits(), 4);
    // On the same instance, warm lookups are satisfied by the memo
    // arena before reaching the backend — the runs are still all there.
    assert_eq!(ephemeral.run_count(), 4);
    fs::remove_dir_all(&dir).unwrap();
}
