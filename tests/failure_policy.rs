//! Campaign-level failure handling: the acceptance scenario for the
//! fault-tolerant checking harness.
//!
//! The subject is the `stress::lock_order_hazard` kernel — externally
//! deterministic whenever it completes, but carrying a narrow ABBA
//! lock-order inversion. The 30-seed window starting at `BASE_SEED` is
//! calibrated so that **exactly one** scheduler seed deadlocks (the
//! first test re-verifies the calibration, so a simulator change that
//! shifts the seed landscape fails loudly here rather than silently
//! weakening the other tests).

use instantcheck::{
    retry_seed, CheckReport, Checker, CheckerConfig, FailurePolicy, RunHashes, Scheme,
};
use instantcheck_workloads::stress;
use minicheck::{check, Gen};
use tsim::{FaultKind, FaultPlan, Program, ProgramBuilder, SimErrorKind, Trigger, ValKind};

/// Drift-phase length of the hazard kernel (see `stress` docs).
const PREAMBLE: u64 = 32;
/// First seed of the calibrated 30-seed window.
const BASE_SEED: u64 = 10;
/// The paper's campaign length.
const RUNS: usize = 30;
/// The one seed in `BASE_SEED..BASE_SEED + RUNS` that deadlocks.
const BAD_SEED: u64 = 34;

fn kernel() -> Program {
    stress::lock_order_hazard(PREAMBLE)
}

fn campaign(policy: FailurePolicy) -> Checker {
    Checker::new(
        CheckerConfig::new(Scheme::HwInc)
            .with_runs(RUNS)
            .with_base_seed(BASE_SEED)
            .with_policy(policy),
    )
    .expect("valid config")
}

#[test]
fn the_seed_window_is_calibrated() {
    let failing = stress::failing_seeds(PREAMBLE, BASE_SEED..BASE_SEED + RUNS as u64);
    assert_eq!(
        failing,
        vec![BAD_SEED],
        "recalibrate BASE_SEED/BAD_SEED: the kernel's deadlocking seeds moved"
    );
}

#[test]
fn abort_policy_surfaces_the_deadlock() {
    let err = campaign(FailurePolicy::Abort).check(kernel).unwrap_err();
    assert_eq!(err.kind(), SimErrorKind::Deadlock);
    assert!(err.is_schedule_dependent());
}

#[test]
fn skip_policy_completes_and_reports_the_deadlock_as_a_determinism_signal() {
    let report = campaign(FailurePolicy::Skip { max_failures: 3 })
        .check(kernel)
        .expect("one deadlock is within the skip budget");
    assert_eq!(report.runs, RUNS - 1, "the other 29 runs are all compared");
    assert_eq!(report.failures.len(), 1);
    let f = &report.failures[0];
    assert_eq!(f.seed, BAD_SEED);
    assert_eq!(f.run_index as u64, BAD_SEED - BASE_SEED);
    assert_eq!(f.error.kind(), SimErrorKind::Deadlock);
    assert_eq!(f.attempt, 0);
    assert!(!f.recovered);
    assert_eq!(report.failure_buckets(), vec![(SimErrorKind::Deadlock, 1)]);

    // The 29 completing runs agree bit for bit — yet the report must
    // not call the program deterministic: whether it *finishes* depends
    // on the schedule.
    assert_eq!(report.ndet_points, 0);
    assert!(report.output_deterministic);
    assert!(report.schedule_divergence());
    assert!(!report.is_deterministic());
}

#[test]
fn retry_policy_fills_every_slot_and_remembers_the_failure() {
    let report = campaign(FailurePolicy::Retry {
        max_retries: 3,
        reseed: true,
    })
    .check(kernel)
    .expect("reseeded retries recover the deadlocked slot");
    assert_eq!(report.runs, RUNS, "every slot is eventually compared");
    assert!(!report.failures.is_empty());
    let first = &report.failures[0];
    assert_eq!(first.seed, BAD_SEED);
    assert_eq!(first.attempt, 0);
    assert!(
        report.failures.iter().all(|f| f.recovered),
        "every failed attempt belongs to a slot that later completed"
    );
    // Each retry attempt's seed follows the documented derivation.
    for f in &report.failures {
        if f.attempt > 0 {
            assert_eq!(f.seed, retry_seed(BASE_SEED, f.run_index, f.attempt));
        }
    }
    assert!(
        report.schedule_divergence(),
        "the recovered deadlock still counts"
    );
    assert!(!report.is_deterministic());
}

#[test]
fn recovery_marks_only_its_own_slots_failures() {
    // Regression: a recovering slot must rewrite the recovered flag of
    // its *own* failed attempts only. Two different slots deadlock and
    // recover in one Retry campaign; each failure has to stay in its
    // slot's bucket with its own attempt numbering.
    let bad = stress::failing_seeds(PREAMBLE, BASE_SEED..BASE_SEED + 120);
    assert!(
        bad.len() >= 2,
        "calibration: need two deadlocking seeds in the scan window"
    );
    let base = bad[0] - 1;
    let runs = (bad[1] - base) as usize + 2;
    let report = Checker::new(
        CheckerConfig::new(Scheme::HwInc)
            .with_runs(runs)
            .with_base_seed(base)
            .with_policy(FailurePolicy::Retry {
                max_retries: 3,
                reseed: true,
            }),
    )
    .expect("valid config")
    .check(kernel)
    .expect("reseeded retries recover both slots");
    assert_eq!(report.runs, runs, "both deadlocked slots were refilled");

    let buckets = report.failures_by_slot();
    let slots: Vec<usize> = buckets.iter().map(|(slot, _)| *slot).collect();
    assert_eq!(
        slots,
        vec![(bad[0] - base) as usize, (bad[1] - base) as usize],
        "exactly the two deadlocking slots failed"
    );
    for (slot, fails) in &buckets {
        assert!(
            fails.iter().all(|f| f.run_index == *slot),
            "failures never migrate between slots"
        );
        assert_eq!(fails[0].attempt, 0, "first failure is the original attempt");
        assert_eq!(fails[0].seed, base + *slot as u64);
        assert!(
            fails.iter().all(|f| f.recovered),
            "recovery marks all of the slot's own attempts"
        );
    }
}

#[test]
fn retry_reseeds_deterministically() {
    let run = || {
        campaign(FailurePolicy::Retry {
            max_retries: 3,
            reseed: true,
        })
        .check(kernel)
        .expect("campaign completes")
    };
    let (a, b) = (run(), run());
    let digest = |r: &CheckReport| {
        (
            r.runs,
            r.failures
                .iter()
                .map(|f| (f.run_index, f.seed, f.attempt, f.error.kind()))
                .collect::<Vec<_>>(),
            r.distributions.clone(),
        )
    };
    assert_eq!(
        digest(&a),
        digest(&b),
        "a retried campaign replays bit for bit"
    );
}

/// A small kernel that allocates, so an injected `AllocFail` can kill a
/// chosen run: two threads sum into a shared cell through heap scratch.
fn alloc_kernel() -> Program {
    let mut b = ProgramBuilder::new(2);
    let g = b.global("G", ValKind::U64, 1);
    let lock = b.mutex();
    for t in 0..2u64 {
        b.thread(move |ctx| {
            let p = ctx.malloc("scratch", tsim::TypeTag::u64s(), 2);
            ctx.store(p, (t + 1) * 3);
            let v = ctx.load(p);
            ctx.lock(lock);
            let acc = ctx.load(g.at(0));
            ctx.store(g.at(0), acc + v);
            ctx.unlock(lock);
            ctx.free(p);
        });
    }
    b.build()
}

fn fingerprints(runs: &[RunHashes]) -> Vec<(Vec<u64>, u64)> {
    runs.iter()
        .map(|r| {
            (
                r.checkpoints.iter().map(|c| c.hash.as_raw()).collect(),
                r.output_digest,
            )
        })
        .collect()
}

#[test]
fn skipping_a_faulted_run_equals_the_clean_campaign_minus_that_run() {
    // Property: a Skip-policy campaign in which run k dies of an
    // injected fatal fault produces exactly the clean campaign's hash
    // sequences with run k deleted. (k >= 1 so both campaigns source
    // their allocation-replay log from the same first run.)
    check("skip_equivalence", 24, |g: &mut Gen| {
        let runs = 4 + g.u64_in(0, 4) as usize;
        let k = g.u64_in(1, runs as u64 - 1) as usize;
        let base = g.u64_in(0, 10_000);
        let cfg = CheckerConfig::new(Scheme::HwInc)
            .with_runs(runs)
            .with_base_seed(base);
        let clean = Checker::new(cfg.clone())
            .expect("valid config")
            .collect_runs(&alloc_kernel)
            .expect("clean campaign completes");

        let fault = FaultPlan::new(g.u64()).with(FaultKind::AllocFail, Trigger::Nth(0));
        let skipping = Checker::new(
            cfg.with_policy(FailurePolicy::Skip { max_failures: 1 })
                .with_fault_in_run(k, fault),
        )
        .expect("valid config")
        .collect_runs(&alloc_kernel)
        .expect("one fault is within the skip budget");

        let mut expected = fingerprints(&clean);
        expected.remove(k);
        assert_eq!(fingerprints(&skipping), expected);
    });
}
